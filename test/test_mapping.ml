open Mm_mapping

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

let seg ?reads ?writes name depth width =
  Mm_design.Segment.make ?reads ?writes ~name ~depth ~width ()

(* --- Preprocess: Fig. 3 ---------------------------------------------------- *)

let test_consumed_ports_fig3 () =
  (* 3-port 16-word bank, the Table 2 example *)
  let cp w = Preprocess.consumed_ports ~words:w ~bank_depth:16 ~ports:3 () in
  Alcotest.(check int) "16 words take all 3" 3 (cp 16);
  Alcotest.(check int) "8 words take 2" 2 (cp 8);
  Alcotest.(check int) "4 words take 1" 1 (cp 4);
  Alcotest.(check int) "1 word takes 1" 1 (cp 1);
  Alcotest.(check int) "0 words take 0" 0 (cp 0);
  (* non-power-of-two rounds up first: 5 -> 8 -> 2 ports *)
  Alcotest.(check int) "5 words round to 8" 2 (cp 5);
  (* oversize fragments take the whole bank *)
  Alcotest.(check int) "17 words take all" 3 (cp 17)

let test_consumed_ports_two_port_exact () =
  (* for Pt = 2 the estimate is exact: two half-banks fit *)
  let cp w = Preprocess.consumed_ports ~words:w ~bank_depth:16 ~ports:2 () in
  Alcotest.(check int) "half bank takes 1 of 2" 1 (cp 8);
  Alcotest.(check int) "full bank takes 2" 2 (cp 16)

let prop_consumed_ports_monotone =
  qtest "consumed_ports is monotone in words"
    QCheck.(pair (int_range 0 200) (int_range 1 3))
    (fun (w, p) ->
      let f x = Preprocess.consumed_ports ~words:x ~bank_depth:64 ~ports:p () in
      f w <= f (w + 1))

let prop_consumed_ports_bounds =
  qtest "consumed_ports stays within [0, ports] and is 0 only at 0"
    QCheck.(pair (int_range 0 5000) (pair (int_range 0 6) (int_range 1 4)))
    (fun (w, (dexp, p)) ->
      let depth = 16 lsl dexp in
      let e = Preprocess.consumed_ports ~words:w ~bank_depth:depth ~ports:p () in
      e >= 0 && e <= p && (e = 0) = (w = 0))

let prop_consumed_ports_never_underestimates =
  (* the fraction of the bank occupied, times ports, never exceeds the
     estimate: EP >= ceil_pow2(w)/depth * p *)
  qtest "consumed_ports >= proportional share"
    QCheck.(pair (int_range 1 64) (int_range 1 4))
    (fun (w, p) ->
      let depth = 64 in
      let e = Preprocess.consumed_ports ~words:w ~bank_depth:depth ~ports:p () in
      float_of_int e
      >= float_of_int (Mm_util.Ints.ceil_pow2 w) /. float_of_int depth *. float_of_int p
         -. 1e-9)

(* --- Preprocess: Fig. 2 / Section 4.1.1 -------------------------------------- *)

let fig2_bank () = Mm_arch.Devices.paper_example_bank ()

let test_fig2_coefficients () =
  (* the worked example: 55x17 onto 3-port 128x1/64x2/32x4/16x8 banks *)
  let c = Preprocess.coeffs (seg "ds" 55 17) (fig2_bank ()) in
  Alcotest.(check string) "alpha" "16x8" (Mm_arch.Config.to_string c.Preprocess.alpha);
  (match c.Preprocess.beta with
  | Some b -> Alcotest.(check string) "beta" "128x1" (Mm_arch.Config.to_string b)
  | None -> Alcotest.fail "beta expected");
  Alcotest.(check int) "FP" 18 c.Preprocess.fp;
  Alcotest.(check int) "WP" 3 c.Preprocess.wp;
  Alcotest.(check int) "DP" 4 c.Preprocess.dp;
  Alcotest.(check int) "WDP" 1 c.Preprocess.wdp;
  Alcotest.(check int) "CP" 26 c.Preprocess.cp;
  Alcotest.(check int) "CW" 17 c.Preprocess.cw;
  Alcotest.(check int) "CD" 56 c.Preprocess.cd;
  Alcotest.(check int) "consumed bits" 952 (Preprocess.consumed_bits c)

let test_exact_fit_no_beta () =
  (* width divides exactly: no beta, no width strips *)
  let c = Preprocess.coeffs (seg "d" 32 8) (fig2_bank ()) in
  Alcotest.(check bool) "no beta" true (c.Preprocess.beta = None);
  Alcotest.(check int) "WP" 0 c.Preprocess.wp;
  Alcotest.(check int) "WDP" 0 c.Preprocess.wdp;
  (* 32 words at 16x8: 2 full instances, all 3 ports each *)
  Alcotest.(check int) "CP" 6 c.Preprocess.cp;
  Alcotest.(check int) "CW" 8 c.Preprocess.cw;
  Alcotest.(check int) "CD" 32 c.Preprocess.cd

let test_narrow_segment () =
  (* width below the widest: alpha is the snuggest config *)
  let c = Preprocess.coeffs (seg "d" 10 3) (fig2_bank ()) in
  Alcotest.(check string) "alpha 32x4" "32x4"
    (Mm_arch.Config.to_string c.Preprocess.alpha);
  (* full_cols = 0, everything in the remainder column at beta = 32x4 *)
  Alcotest.(check int) "CW" 4 c.Preprocess.cw;
  Alcotest.(check int) "CD" 16 c.Preprocess.cd;
  (* 10 -> 16 words of 32: half an instance at 3 ports -> 2 ports *)
  Alcotest.(check int) "CP" 2 c.Preprocess.cp

let test_single_config_bank () =
  let sram = Mm_arch.Devices.offchip_sram ~depth:1024 ~width:32 () in
  let c = Preprocess.coeffs (seg "d" 100 16) sram in
  Alcotest.(check string) "alpha" "1024x32" (Mm_arch.Config.to_string c.Preprocess.alpha);
  Alcotest.(check int) "CP" 1 c.Preprocess.cp;
  Alcotest.(check int) "CW" 32 c.Preprocess.cw;
  Alcotest.(check int) "CD" 128 c.Preprocess.cd

let test_fits () =
  let bank = fig2_bank () in
  Alcotest.(check bool) "small fits" true (Preprocess.fits (seg "s" 16 8) bank);
  Alcotest.(check bool) "oversized fails" false
    (Preprocess.fits (seg "big" 100000 32) bank)

(* --- Preprocess: Table 2 ------------------------------------------------------ *)

let test_table2_options () =
  let opts = Preprocess.allocation_options ~ports:3 ~depth:16 () in
  (* all rows are decreasing power-of-two-or-zero triples summing <= 16 *)
  List.iter
    (fun (alloc, _) ->
      Alcotest.(check int) "three ports" 3 (List.length alloc);
      Alcotest.(check bool) "sum within depth" true
        (Mm_util.Ints.sum alloc <= 16);
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a >= b && decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "decreasing" true (decreasing alloc);
      List.iter
        (fun w ->
          Alcotest.(check bool) "pow2 or zero" true
            (w = 0 || Mm_util.Ints.is_pow2 w))
        alloc)
    opts;
  (* the paper's example rows *)
  let find alloc = List.assoc alloc opts in
  Alcotest.(check bool) "(16,0,0) accepted" true (find [ 16; 0; 0 ]);
  Alcotest.(check bool) "(8,8,0) rejected (the paper's example)" false
    (find [ 8; 8; 0 ]);
  Alcotest.(check bool) "(8,4,0) accepted" true (find [ 8; 4; 0 ]);
  Alcotest.(check bool) "(4,4,4) accepted" true (find [ 4; 4; 4 ]);
  Alcotest.(check bool) "(1,1,1) accepted" true (find [ 1; 1; 1 ])

let test_table2_two_ports_no_overestimate () =
  (* with two ports the (8,8) split is accepted: the estimate is exact *)
  let opts = Preprocess.allocation_options ~ports:2 ~depth:16 () in
  Alcotest.(check bool) "(8,8) accepted" true (List.assoc [ 8; 8 ] opts)

(* --- Cost ----------------------------------------------------------------------- *)

let test_cost_components () =
  let bank =
    Mm_arch.Bank_type.make ~name:"t" ~instances:2 ~ports:1
      ~configs:[ Mm_arch.Config.make ~depth:1024 ~width:16 ]
      ~read_latency:2 ~write_latency:3 ~pins_traversed:2
  in
  let s = seg ~reads:10 ~writes:20 "s" 100 16 in
  (* uniform: Dd * (RL + WL) = 100 * 5 *)
  Alcotest.(check (float 1e-9)) "latency uniform" 500.0
    (Cost.latency_cost Cost.Uniform s bank);
  (* profiled: 10*2 + 20*3 *)
  Alcotest.(check (float 1e-9)) "latency profiled" 80.0
    (Cost.latency_cost Cost.Profiled s bank);
  Alcotest.(check (float 1e-9)) "pin delay uniform" 200.0
    (Cost.pin_delay_cost Cost.Uniform s bank);
  Alcotest.(check (float 1e-9)) "pin delay profiled" 60.0
    (Cost.pin_delay_cost Cost.Profiled s bank);
  let c = Preprocess.coeffs s bank in
  (* CD = 128, CW = 16 -> (7 + 16) * 2 *)
  Alcotest.(check (float 1e-9)) "pin io" 46.0 (Cost.pin_io_cost c s bank);
  Alcotest.(check (float 1e-9)) "weighted total" 746.0
    (Cost.assignment_cost Cost.default_weights Cost.Uniform c s bank)

let test_cost_onchip_free_pins () =
  let bank = Mm_arch.Devices.virtex_blockram ~instances:1 () in
  let s = seg "s" 64 8 in
  let c = Preprocess.coeffs s bank in
  Alcotest.(check (float 1e-9)) "no pin delay on chip" 0.0
    (Cost.pin_delay_cost Cost.Uniform s bank);
  Alcotest.(check (float 1e-9)) "no pin io on chip" 0.0
    (Cost.pin_io_cost c s bank)

(* --- Fragments (Fig. 2 decomposition invariants) --------------------------------- *)

let segment_gen =
  QCheck.make
    QCheck.Gen.(
      let* depth = int_range 1 600 in
      let* width = int_range 1 40 in
      return (depth, width))

let prop_fragments_match_coefficients =
  qtest ~count:400 "fragment decomposition sums to CP and CW*CD" segment_gen
    (fun (depth, width) ->
      let bank = fig2_bank () in
      let s = seg "s" depth width in
      let c = Preprocess.coeffs s bank in
      let frags = Detailed.fragments_of ~segment:0 s bank in
      let ports = Mm_util.Ints.sum_by (fun f -> f.Detailed.ports_needed) frags in
      let bits = Mm_util.Ints.sum_by (fun f -> f.Detailed.footprint_bits) frags in
      ports = c.Preprocess.cp && bits = Preprocess.consumed_bits c)

let prop_fragments_on_virtex =
  qtest ~count:400 "fragment invariants on the Virtex BlockRAM" segment_gen
    (fun (depth, width) ->
      let bank = Mm_arch.Devices.virtex_blockram ~instances:64 () in
      let s = seg "s" depth width in
      let c = Preprocess.coeffs s bank in
      let frags = Detailed.fragments_of ~segment:0 s bank in
      Mm_util.Ints.sum_by (fun f -> f.Detailed.ports_needed) frags = c.Preprocess.cp
      && Mm_util.Ints.sum_by (fun f -> f.Detailed.footprint_bits) frags
         = Preprocess.consumed_bits c
      && List.for_all
           (fun f -> Mm_util.Ints.is_pow2 f.Detailed.rounded_words)
           frags
      && List.for_all
           (fun f -> f.Detailed.words <= f.Detailed.rounded_words)
           frags)

let prop_fragment_count_matches_rectangle =
  qtest ~count:400 "fragment counts follow the Fig. 2 rectangle" segment_gen
    (fun (depth, width) ->
      let bank = fig2_bank () in
      let s = seg "s" depth width in
      let c = Preprocess.coeffs s bank in
      let frags = Detailed.fragments_of ~segment:0 s bank in
      let count part =
        List.length (List.filter (fun f -> f.Detailed.part = part) frags)
      in
      let da = c.Preprocess.alpha.Mm_arch.Config.depth in
      let wa = c.Preprocess.alpha.Mm_arch.Config.width in
      let full_rows = depth / da and full_cols = width / wa in
      let d_rem = depth mod da and w_rem = width mod wa in
      count Detailed.Full = full_rows * full_cols
      && count Detailed.Width_strip = (if w_rem = 0 then 0 else full_rows)
      && count Detailed.Depth_strip = (if d_rem = 0 then 0 else full_cols)
      && count Detailed.Corner = (if w_rem = 0 || d_rem = 0 then 0 else 1))

(* --- Detailed placement + Validate ------------------------------------------------ *)

let small_board () =
  Mm_arch.Board.make ~name:"small"
    [
      Mm_arch.Devices.virtex_blockram ~instances:6 ();
      Mm_arch.Devices.offchip_sram ~instances:2 ~depth:16384 ~width:32 ();
    ]

let test_detailed_greedy_legal () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d"
      [ seg "a" 200 8; seg "b" 100 16; seg "c" 4000 32; seg "d" 64 4 ]
  in
  match Global_ilp.solve board design with
  | Error _ -> Alcotest.fail "global failed"
  | Ok (assignment, _) -> (
      match Detailed.run board design assignment with
      | Error f -> Alcotest.fail f.Detailed.reason
      | Ok mapping ->
          Alcotest.(check (list string)) "no violations" []
            (List.map
               (fun v -> v.Validate.message)
               (Validate.check board design mapping)))

let test_detailed_overlap_shares_storage () =
  (* Lifetime-disjoint segments share address space through different
     ports of the same instance. Note that under the Fig. 3 model port
     sharing is never allowed (the paper's no-arbitration rule), and
     since a fragment's port count is at least its capacity fraction
     times the port count, the port budget always dominates: overlap
     shares bits, it cannot rescue an otherwise port-infeasible
     assignment. *)
  let bank = Mm_arch.Devices.paper_example_bank ~instances:1 () in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 5 };
        { Mm_design.Lifetime.birth = 10; death = 15 };
        { Mm_design.Lifetime.birth = 0; death = 15 };
      |]
  in
  (* each 8x4 fragment: quarter of a 32x4-configured instance, 1 port *)
  let design =
    Mm_design.Design.make ~lifetimes:lt ~name:"d"
      [ seg "a" 8 4; seg "b" 8 4; seg "c" 8 4 ]
  in
  let assignment = [| 0; 0; 0 |] in
  (match Detailed.run ~allow_overlap:true board design assignment with
  | Ok mapping ->
      Alcotest.(check (list string)) "legal" []
        (List.map (fun v -> v.Validate.message) (Validate.check board design mapping));
      Alcotest.(check bool) "a and b share a slot" true
        (List.exists
           (fun (p : Detailed.placement) -> p.Detailed.shared)
           mapping.Detailed.placements);
      (* shared bits are charged once: 2 slots of 32 bits, not 3 *)
      let distinct_offsets =
        List.sort_uniq compare
          (List.map
             (fun (p : Detailed.placement) -> p.Detailed.offset_bits)
             mapping.Detailed.placements)
      in
      Alcotest.(check int) "two distinct slots" 2 (List.length distinct_offsets)
  | Error f -> Alcotest.fail f.Detailed.reason);
  (* the same placement without overlap remains legal, just wider *)
  match Detailed.run ~allow_overlap:false board design assignment with
  | Ok mapping ->
      Alcotest.(check bool) "legal without overlap" true
        (Validate.is_legal board design mapping)
  | Error f -> Alcotest.fail f.Detailed.reason

let test_detailed_conflicting_cannot_share () =
  let bank =
    Mm_arch.Bank_type.make ~name:"tiny" ~instances:1 ~ports:2
      ~configs:[ Mm_arch.Config.make ~depth:64 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  (* both alive at once: may not overlap; bank too small for both *)
  let design = Mm_design.Design.make ~name:"d" [ seg "a" 64 8; seg "b" 64 8 ] in
  match Detailed.run board design [| 0; 0 |] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f -> Alcotest.(check int) "fails on type 0" 0 f.Detailed.type_index

let test_validate_catches_corruption () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d" [ seg "a" 100 8; seg "b" 300 16 ]
  in
  match Global_ilp.solve board design with
  | Error _ -> Alcotest.fail "global failed"
  | Ok (assignment, _) -> (
      match Detailed.run board design assignment with
      | Error f -> Alcotest.fail f.Detailed.reason
      | Ok mapping ->
          (* corrupt: move every placement to instance 0 port 0 *)
          let corrupted =
            {
              mapping with
              Detailed.placements =
                List.map
                  (fun (p : Detailed.placement) ->
                    { p with Detailed.instance = 0; first_port = 0 })
                  mapping.Detailed.placements;
            }
          in
          if List.length mapping.Detailed.placements > 1 then
            Alcotest.(check bool) "corruption detected" false
              (Validate.is_legal board design corrupted))

(* --- Global ILP -------------------------------------------------------------------- *)

let test_global_prefers_onchip () =
  (* plenty of room everywhere: latency + pins should pull small segments
     on chip *)
  let board = small_board () in
  let design = Mm_design.Design.make ~name:"d" [ seg "hot" 128 8 ] in
  match Global_ilp.solve board design with
  | Error _ -> Alcotest.fail "solve failed"
  | Ok (a, _) ->
      let bt = Mm_arch.Board.bank_type board a.(0) in
      Alcotest.(check bool) "on chip" true (Mm_arch.Bank_type.is_on_chip bt)

let test_global_respects_capacity () =
  (* the big segment cannot fit on chip *)
  let board = small_board () in
  let design = Mm_design.Design.make ~name:"d" [ seg "big" 10000 32 ] in
  match Global_ilp.solve board design with
  | Error _ -> Alcotest.fail "solve failed"
  | Ok (a, _) ->
      let bt = Mm_arch.Board.bank_type board a.(0) in
      Alcotest.(check bool) "off chip" true (not (Mm_arch.Bank_type.is_on_chip bt))

let test_global_unmappable () =
  let bank =
    Mm_arch.Bank_type.make ~name:"tiny" ~instances:1 ~ports:1
      ~configs:[ Mm_arch.Config.make ~depth:8 ~width:1 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let design = Mm_design.Design.make ~name:"d" [ seg "big" 4096 32 ] in
  match Global_ilp.solve board design with
  | Error (Global_ilp.No_feasible_type 0, _) -> ()
  | _ -> Alcotest.fail "expected No_feasible_type"

let test_global_forbidden_assignment () =
  let board = small_board () in
  let design = Mm_design.Design.make ~name:"d" [ seg "s" 128 8 ] in
  match Global_ilp.solve board design with
  | Error _ -> Alcotest.fail "first solve failed"
  | Ok (a1, _) -> (
      (* forbidding the optimum forces a different assignment *)
      match Global_ilp.solve ~forbidden:[ a1 ] board design with
      | Ok (a2, _) -> Alcotest.(check bool) "different" true (a1 <> a2)
      | Error _ -> Alcotest.fail "no alternative found")

let test_global_lifetime_capacity_cliques () =
  (* with lifetime info the capacity constraints are generated per
     maximal clique of the interval graph; without it a single
     all-segments group is used (the paper's conservative default) *)
  let segs = [ seg "a" 64 8; seg "b" 64 8 ] in
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 5 };
        { Mm_design.Lifetime.birth = 10; death = 15 };
      |]
  in
  let d_overlap = Mm_design.Design.make ~lifetimes:lt ~name:"d" segs in
  Alcotest.(check (list (list int)))
    "disjoint lifetimes give singleton cliques"
    [ [ 0 ]; [ 1 ] ]
    (Global_ilp.capacity_cliques d_overlap);
  let d_conflict = Mm_design.Design.make ~name:"d" segs in
  Alcotest.(check (list (list int)))
    "all-conflicting gives one group"
    [ [ 0; 1 ] ]
    (Global_ilp.capacity_cliques d_conflict)

let test_port_constraint_dominates_capacity () =
  (* Fig. 3 charges each fragment at least its capacity fraction times
     the port count, so any assignment satisfying the port budget also
     satisfies the storage budget: two full-bank segments are rejected
     by ports even with disjoint lifetimes *)
  let bank =
    Mm_arch.Bank_type.make ~name:"one" ~instances:1 ~ports:2
      ~configs:[ Mm_arch.Config.make ~depth:64 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 5 };
        { Mm_design.Lifetime.birth = 10; death = 15 };
      |]
  in
  let design =
    Mm_design.Design.make ~lifetimes:lt ~name:"d" [ seg "a" 64 8; seg "b" 64 8 ]
  in
  match Global_ilp.solve board design with
  | Error (Global_ilp.Ilp_infeasible, _) -> ()
  | Ok _ -> Alcotest.fail "ports should forbid two full-bank segments"
  | Error _ -> Alcotest.fail "unexpected error"

(* --- The paper's central invariant: global == complete ----------------------------- *)

let instance_gen =
  QCheck.make
    QCheck.Gen.(
      let* segments = int_range 2 8 in
      let* seed = int_range 0 1_000_000 in
      return (segments, seed))

let prop_global_equals_complete =
  qtest ~count:25 "global and complete formulations share their optimum"
    instance_gen (fun (segments, seed) ->
      let rng = Mm_util.Prng.create seed in
      let board = Mm_workload.Gen.random_board rng in
      let design = Mm_workload.Gen.random_design rng ~segments board in
      match (Global_ilp.solve board design, Complete_ilp.solve board design) with
      | Ok (ag, _), Ok (ac, _) ->
          let cost a = Global_ilp.assignment_cost board design a in
          Float.abs (cost ag -. cost ac) <= 1e-6 *. Float.max 1.0 (cost ag)
      | Error (Global_ilp.Ilp_infeasible, _), Error (Global_ilp.Ilp_infeasible, _)
        ->
          true
      | ( Error (Global_ilp.No_feasible_type _, _),
          Error (Global_ilp.No_feasible_type _, _) ) ->
          true
      | _ -> false)

let prop_global_assignment_feasible =
  qtest ~count:40 "global assignments satisfy port and capacity budgets"
    instance_gen (fun (segments, seed) ->
      let rng = Mm_util.Prng.create (seed + 13) in
      let board = Mm_workload.Gen.random_board rng in
      let design = Mm_workload.Gen.random_design rng ~segments board in
      match Global_ilp.solve board design with
      | Ok (a, _) -> Validate.assignment_feasible board design a = []
      | Error _ -> true)


let prop_global_optimal_vs_enumeration =
  qtest ~count:40 "global ILP finds the cheapest feasible assignment"
    instance_gen (fun (segments, seed) ->
      let segments = min segments 5 in
      let rng = Mm_util.Prng.create (seed + 4242) in
      let board = Mm_workload.Gen.random_board rng in
      let design = Mm_workload.Gen.random_design rng ~segments board in
      let n = Mm_arch.Board.num_types board in
      let m = Mm_design.Design.num_segments design in
      (* enumerate all n^m assignments, keep the global-feasible ones *)
      let best = ref infinity in
      let a = Array.make m 0 in
      let rec enum d =
        if d = m then begin
          if Validate.assignment_feasible board design a = [] then begin
            let c = Global_ilp.assignment_cost board design a in
            if c < !best then best := c
          end
        end
        else
          for t = 0 to n - 1 do
            a.(d) <- t;
            enum (d + 1)
          done
      in
      enum 0;
      match Global_ilp.solve board design with
      | Ok (sol, _) ->
          let c = Global_ilp.assignment_cost board design sol in
          Float.abs (c -. !best) <= 1e-6 *. Float.max 1.0 !best
      | Error (Global_ilp.Ilp_infeasible, _) -> !best = infinity
      | Error (Global_ilp.No_feasible_type _, _) -> !best = infinity
      | Error _ -> false)

(* --- Mapper pipeline ----------------------------------------------------------------- *)

let prop_pipeline_produces_legal_mappings =
  qtest ~count:40 "global->detailed pipeline emits validator-clean mappings"
    instance_gen (fun (segments, seed) ->
      let rng = Mm_util.Prng.create (seed + 41) in
      let board = Mm_workload.Gen.random_board rng in
      let design = Mm_workload.Gen.random_design rng ~segments board in
      match Mapper.run board design with
      | Ok o -> Validate.is_legal board design o.Mapper.mapping
      | Error (Mapper.Unmappable _) -> true
      | Error (Mapper.Retries_exhausted _) -> true
      | Error Mapper.Solver_limit -> false)

let test_mapper_complete_path () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d" [ seg "a" 200 8; seg "b" 100 16 ]
  in
  match
    ( Mapper.run board design,
      Mapper.run ~method_:Mapper.Complete_flat board design )
  with
  | Ok g, Ok c ->
      Alcotest.(check (float 1e-6)) "same objective" g.Mapper.objective
        c.Mapper.objective;
      Alcotest.(check bool) "complete mapping legal" true
        (Validate.is_legal board design c.Mapper.mapping)
  | _ -> Alcotest.fail "both methods should succeed"

let test_mapper_ilp_detailed_engine () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d"
      [ seg "a" 200 8; seg "b" 100 16; seg "c" 64 4 ]
  in
  let options = Mapper.options ~detailed:Mapper.Ilp () in
  match Mapper.run ~options board design with
  | Ok o ->
      Alcotest.(check bool) "legal" true
        (Validate.is_legal board design o.Mapper.mapping)
  | Error e -> Alcotest.fail (Mapper.error_to_string e)


(* --- Section 6 extensions: improved port model + arbitration ------------------ *)

let test_improved_port_model_values () =
  let cp ?model w =
    Preprocess.consumed_ports ?model ~words:w ~bank_depth:16 ~ports:3 ()
  in
  (* the improved estimate accepts (8,8,0): one port per half-bank *)
  Alcotest.(check int) "improved half bank" 1 (cp ~model:Preprocess.Improved 8);
  Alcotest.(check int) "fig3 half bank" 2 (cp ~model:Preprocess.Fig3 8);
  Alcotest.(check int) "improved full bank" 3 (cp ~model:Preprocess.Improved 16);
  Alcotest.(check int) "improved tiny still needs one" 1
    (cp ~model:Preprocess.Improved 1);
  Alcotest.(check int) "improved zero" 0 (cp ~model:Preprocess.Improved 0)

let test_improved_accepts_all_table2_options () =
  let opts =
    Preprocess.allocation_options ~model:Preprocess.Improved ~ports:3 ~depth:16 ()
  in
  Alcotest.(check int) "no rejections" 0
    (List.length (List.filter (fun (_, ok) -> not ok) opts));
  Alcotest.(check bool) "(8,8,0) accepted" true (List.assoc [ 8; 8; 0 ] opts)

let prop_improved_never_exceeds_fig3 =
  qtest "improved port estimate <= Fig. 3 estimate, equal up to 2 ports"
    QCheck.(pair (int_range 0 300) (pair (int_range 0 5) (int_range 1 4)))
    (fun (w, (dexp, p)) ->
      let depth = 16 lsl dexp in
      let fig3 =
        Preprocess.consumed_ports ~model:Preprocess.Fig3 ~words:w
          ~bank_depth:depth ~ports:p ()
      in
      let improved =
        Preprocess.consumed_ports ~model:Preprocess.Improved ~words:w
          ~bank_depth:depth ~ports:p ()
      in
      improved <= fig3 && (p > 2 || improved = fig3))

let test_improved_model_enables_mapping () =
  (* two half-bank segments on a single 3-port bank: rejected by Fig. 3
     (2 + 2 = 4 > 3 ports), accepted by the improved model (1 + 1) *)
  let bank =
    Mm_arch.Bank_type.make ~name:"b" ~instances:1 ~ports:3
      ~configs:[ Mm_arch.Config.make ~depth:16 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"board" [ bank ] in
  let design = Mm_design.Design.make ~name:"d" [ seg "a" 8 8; seg "b" 8 8 ] in
  (match Global_ilp.solve board design with
  | Error (Global_ilp.Ilp_infeasible, _) -> ()
  | _ -> Alcotest.fail "Fig. 3 model should reject");
  match Global_ilp.solve ~port_model:Preprocess.Improved board design with
  | Ok (a, _) -> (
      match Detailed.run ~port_model:Preprocess.Improved board design a with
      | Ok mapping ->
          Alcotest.(check bool) "legal under improved model" true
            (Validate.is_legal ~port_model:Preprocess.Improved board design mapping)
      | Error f -> Alcotest.fail f.Detailed.reason)
  | Error _ -> Alcotest.fail "improved model should accept"

let test_arbitration_enables_port_sharing () =
  (* two full-bank lifetime-disjoint segments on one dual-port bank:
     infeasible under the paper's no-arbitration rule, feasible with the
     Section 6 arbitration extension *)
  let bank =
    Mm_arch.Bank_type.make ~name:"one" ~instances:1 ~ports:2
      ~configs:[ Mm_arch.Config.make ~depth:64 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 5 };
        { Mm_design.Lifetime.birth = 10; death = 15 };
      |]
  in
  let design =
    Mm_design.Design.make ~lifetimes:lt ~name:"d" [ seg "a" 64 8; seg "b" 64 8 ]
  in
  (match Global_ilp.solve board design with
  | Error (Global_ilp.Ilp_infeasible, _) -> ()
  | _ -> Alcotest.fail "no-arbitration model should reject");
  match Global_ilp.solve ~arbitration:true board design with
  | Error _ -> Alcotest.fail "arbitration model should accept"
  | Ok (a, _) -> (
      match Detailed.run ~allow_port_sharing:true board design a with
      | Error f -> Alcotest.fail f.Detailed.reason
      | Ok mapping ->
          Alcotest.(check bool) "legal with arbitration" true
            (Validate.is_legal ~arbitration:true board design mapping);
          Alcotest.(check bool) "illegal without arbitration" false
            (Validate.is_legal board design mapping))

let test_arbitration_still_blocks_conflicting () =
  (* overlapping lifetimes may NOT share ports even with arbitration *)
  let bank =
    Mm_arch.Bank_type.make ~name:"one" ~instances:1 ~ports:2
      ~configs:[ Mm_arch.Config.make ~depth:64 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 10 };
        { Mm_design.Lifetime.birth = 5; death = 15 };
      |]
  in
  let design =
    Mm_design.Design.make ~lifetimes:lt ~name:"d" [ seg "a" 64 8; seg "b" 64 8 ]
  in
  match Global_ilp.solve ~arbitration:true board design with
  | Error (Global_ilp.Ilp_infeasible, _) -> ()
  | Ok _ -> Alcotest.fail "conflicting segments must not share"
  | Error _ -> Alcotest.fail "unexpected error"

let test_mapper_arbitration_pipeline () =
  let bank =
    Mm_arch.Bank_type.make ~name:"one" ~instances:2 ~ports:2
      ~configs:[ Mm_arch.Config.make ~depth:64 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 5 };
        { Mm_design.Lifetime.birth = 10; death = 15 };
        { Mm_design.Lifetime.birth = 20; death = 25 };
        { Mm_design.Lifetime.birth = 0; death = 25 };
      |]
  in
  let design =
    Mm_design.Design.make ~lifetimes:lt ~name:"d"
      [ seg "a" 64 8; seg "b" 64 8; seg "c" 64 8; seg "d" 64 8 ]
  in
  let options = Mapper.options ~arbitration:true () in
  match Mapper.run ~options board design with
  | Ok o ->
      Alcotest.(check bool) "legal under arbitration" true
        (Validate.is_legal ~arbitration:true board design o.Mapper.mapping)
  | Error e -> Alcotest.fail (Mapper.error_to_string e)

let prop_improved_pipeline_legal =
  qtest ~count:30 "pipeline with improved port model emits legal mappings"
    instance_gen (fun (segments, seed) ->
      let rng = Mm_util.Prng.create (seed + 77) in
      let board = Mm_workload.Gen.random_board rng in
      let design = Mm_workload.Gen.random_design rng ~segments board in
      let options = Mapper.options ~port_model:Preprocess.Improved () in
      match Mapper.run ~options board design with
      | Ok o ->
          Validate.is_legal ~port_model:Preprocess.Improved board design
            o.Mapper.mapping
      | Error (Mapper.Unmappable _) | Error (Mapper.Retries_exhausted _) -> true
      | Error Mapper.Solver_limit -> false)

(* --- Report smoke -------------------------------------------------------------------- *)

let test_report_renders () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d" [ seg "a" 200 8; seg "b" 100 16 ]
  in
  match Mapper.run board design with
  | Error e -> Alcotest.fail (Mapper.error_to_string e)
  | Ok o ->
      let s = Report.outcome board design o in
      Alcotest.(check bool) "non-empty" true (String.length s > 200)



(* --- multi-PU extension --------------------------------------------------------- *)

let test_multi_pu_cost () =
  (* a bank 0 pins from PU0 but 6 pins from PU1 *)
  let bank =
    Mm_arch.Bank_type.make_multi_pu ~name:"near0" ~instances:2 ~ports:1
      ~configs:[ Mm_arch.Config.make ~depth:1024 ~width:16 ]
      ~read_latency:1 ~write_latency:1 ~pu_pins:[ 0; 6 ]
  in
  Alcotest.(check int) "pus" 2 (Mm_arch.Bank_type.num_pus bank);
  Alcotest.(check int) "pu0" 0 (Mm_arch.Bank_type.pins_from bank 0);
  Alcotest.(check int) "pu1" 6 (Mm_arch.Bank_type.pins_from bank 1);
  Alcotest.(check int) "fallback" 0 (Mm_arch.Bank_type.pins_from bank 7);
  let s0 = Mm_design.Segment.make ~pu:0 ~name:"a" ~depth:100 ~width:16 () in
  let s1 = Mm_design.Segment.make ~pu:1 ~name:"b" ~depth:100 ~width:16 () in
  Alcotest.(check (float 1e-9)) "pu0 free" 0.0
    (Cost.pin_delay_cost Cost.Uniform s0 bank);
  Alcotest.(check (float 1e-9)) "pu1 pays" 600.0
    (Cost.pin_delay_cost Cost.Uniform s1 bank)

let test_multi_pu_assignment () =
  (* two symmetric SRAM pools, each adjacent to one PU; segments must be
     mapped next to their owners *)
  let near pu_pins name =
    Mm_arch.Bank_type.make_multi_pu ~name ~instances:2 ~ports:1
      ~configs:[ Mm_arch.Config.make ~depth:4096 ~width:16 ]
      ~read_latency:2 ~write_latency:2 ~pu_pins
  in
  let board =
    Mm_arch.Board.make ~name:"dual-pu"
      [ near [ 2; 6 ] "sram-near-pu0"; near [ 6; 2 ] "sram-near-pu1" ]
  in
  let design =
    Mm_design.Design.make ~name:"d"
      [
        Mm_design.Segment.make ~pu:0 ~name:"pu0_data" ~depth:1024 ~width:16 ();
        Mm_design.Segment.make ~pu:1 ~name:"pu1_data" ~depth:1024 ~width:16 ();
      ]
  in
  match Mapper.run board design with
  | Error e -> Alcotest.fail (Mapper.error_to_string e)
  | Ok o ->
      let name d =
        (Mm_arch.Board.bank_type board o.Mapper.assignment.(d)).Mm_arch.Bank_type.name
      in
      Alcotest.(check string) "pu0 data near pu0" "sram-near-pu0" (name 0);
      Alcotest.(check string) "pu1 data near pu1" "sram-near-pu1" (name 1);
      Alcotest.(check bool) "legal" true (Validate.is_legal board design o.Mapper.mapping)

let test_multi_pu_rejects () =
  Alcotest.check_raises "empty pu_pins"
    (Invalid_argument "Bank_type.make_multi_pu: empty pu_pins") (fun () ->
      ignore
        (Mm_arch.Bank_type.make_multi_pu ~name:"x" ~instances:1 ~ports:1
           ~configs:[ Mm_arch.Config.make ~depth:8 ~width:1 ]
           ~read_latency:1 ~write_latency:1 ~pu_pins:[]));
  Alcotest.check_raises "negative pu"
    (Invalid_argument "Segment.make: negative pu") (fun () ->
      ignore (Mm_design.Segment.make ~pu:(-1) ~name:"x" ~depth:1 ~width:1 ()))

(* --- Report contents ----------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_report_contents () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d" [ seg "alpha" 200 8; seg "beta" 4000 32 ]
  in
  match Mapper.run board design with
  | Error e -> Alcotest.fail (Mapper.error_to_string e)
  | Ok o ->
      let summary = Report.assignment_summary board design o.Mapper.assignment in
      Alcotest.(check bool) "summary names types" true (contains summary "BlockRAM");
      let costs = Report.cost_breakdown board design o.Mapper.assignment in
      Alcotest.(check bool) "costs name segments" true (contains costs "alpha");
      Alcotest.(check bool) "costs have total" true (contains costs "TOTAL");
      let placements = Report.placement_table board design o.Mapper.mapping in
      Alcotest.(check bool) "placements name segments" true (contains placements "beta")

let test_lifetime_chart () =
  let lt =
    Mm_design.Lifetime.make
      [|
        { Mm_design.Lifetime.birth = 0; death = 5 };
        { Mm_design.Lifetime.birth = 6; death = 9 };
      |]
  in
  let design =
    Mm_design.Design.make ~lifetimes:lt ~name:"d" [ seg "first" 8 8; seg "second" 8 8 ]
  in
  let chart = Report.lifetime_chart design in
  Alcotest.(check bool) "names both" true
    (contains chart "first" && contains chart "second");
  Alcotest.(check bool) "shows ranges" true (contains chart "[0, 5]");
  (* no lifetimes -> empty *)
  let bare = Mm_design.Design.make ~name:"d" [ seg "x" 8 8 ] in
  Alcotest.(check string) "empty without lifetimes" "" (Report.lifetime_chart bare)

let test_mapper_retry_budget () =
  (* the port-pairing trap: global admits 9 half-banks on 6 x 3-port
     instances, detailed fits only 6; with max_retries = 0 the pipeline
     must give up immediately with Retries_exhausted *)
  let bank =
    Mm_arch.Bank_type.make ~name:"tri" ~instances:2 ~ports:3
      ~configs:[ Mm_arch.Config.make ~depth:16 ~width:8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board = Mm_arch.Board.make ~name:"b" [ bank ] in
  let design =
    Mm_design.Design.make ~name:"d" [ seg "a" 8 8; seg "b" 8 8; seg "c" 8 8 ]
  in
  (* 3 half-banks: Fig. 3 charges 2 ports each = 6 <= 6 total ports, but
     only one fits per instance -> detailed fails *)
  let options = Mapper.options ~max_retries:0 () in
  match Mapper.run ~options board design with
  | Error (Mapper.Retries_exhausted _) -> ()
  | Error (Mapper.Unmappable _) -> ()
  | Error e -> Alcotest.fail (Mapper.error_to_string e)
  | Ok o ->
      (* acceptable alternative: a later-found legal assignment *)
      Alcotest.(check bool) "legal if it claims success" true
        (Validate.is_legal board design o.Mapper.mapping)

let test_fragmentation_metric () =
  let board = small_board () in
  (* one segment that must fragment (wider than 16 bits) and one that fits whole *)
  let design = Mm_design.Design.make ~name:"d" [ seg "wide" 256 24; seg "tiny" 16 8 ] in
  match Mapper.run board design with
  | Error e -> Alcotest.fail (Mapper.error_to_string e)
  | Ok o ->
      let frags = List.length o.Mapper.mapping.Detailed.placements in
      Alcotest.(check bool) "fragmentation consistent" true
        (Detailed.fragmentation o.Mapper.mapping = frags - 2)


let test_global_ilp_through_mps () =
  (* the real global model survives an MPS round trip with its optimum *)
  let board, design =
    Mm_workload.Gen.instance
      (List.hd Mm_workload.Table3.points).Mm_workload.Table3.spec
  in
  match Global_ilp.build board design with
  | Error e -> Alcotest.fail e
  | Ok b -> (
      let text = Mm_lp.Mps.to_string b.Global_ilp.problem in
      match Mm_lp.Mps.parse text with
      | Error e -> Alcotest.fail e
      | Ok q ->
          let r1 = Mm_lp.Solver.solve b.Global_ilp.problem in
          let r2 = Mm_lp.Solver.solve q in
          (match
             ( r1.Mm_lp.Solver.mip.Mm_lp.Branch_bound.objective,
               r2.Mm_lp.Solver.mip.Mm_lp.Branch_bound.objective )
           with
          | Some a, Some b ->
              Alcotest.(check bool) "objectives agree" true
                (Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a))
          | _ -> Alcotest.fail "both should solve"))

let test_global_ilp_through_lp_format () =
  (* the LP-format writer emits a complete, well-formed model (smoke:
     non-empty sections for a real instance) *)
  let board, design =
    Mm_workload.Gen.instance
      (List.hd Mm_workload.Table3.points).Mm_workload.Table3.spec
  in
  match Global_ilp.build board design with
  | Error e -> Alcotest.fail e
  | Ok b ->
      let text = Mm_lp.Lp_format.to_string b.Global_ilp.problem in
      Alcotest.(check bool) "substantial" true (String.length text > 2000)


let test_detailed_ilp_direct () =
  let board = small_board () in
  let design =
    Mm_design.Design.make ~name:"d"
      [ seg "a" 200 8; seg "b" 100 16; seg "c" 64 4; seg "d" 300 8 ]
  in
  match Global_ilp.solve board design with
  | Error _ -> Alcotest.fail "global failed"
  | Ok (assignment, _) ->
      let run symmetry_breaking =
        Detailed_ilp.run
          ~options:(Detailed_ilp.options ~symmetry_breaking ())
          board design assignment
      in
      (match (run true, run false) with
      | Ok a, Ok b ->
          Alcotest.(check bool) "legal with symmetry breaking" true
            (Validate.is_legal board design a);
          Alcotest.(check bool) "legal without" true (Validate.is_legal board design b);
          (* both minimize instances: same count *)
          let count t = Mm_util.Ints.sum_by snd (Detailed.instances_used t) in
          Alcotest.(check int) "same instance count" (count a) (count b)
      | _ -> Alcotest.fail "detailed ILP failed")

let test_instances_used_and_parts () =
  let board = small_board () in
  let design = Mm_design.Design.make ~name:"d" [ seg "wide" 100 24 ] in
  match Mapper.run board design with
  | Error e -> Alcotest.fail (Mapper.error_to_string e)
  | Ok o ->
      (* a 24-bit segment on 16-bit-max BlockRAMs must produce a full
         column and a width strip *)
      let parts =
        List.sort_uniq compare
          (List.map
             (fun (p : Detailed.placement) -> p.Detailed.fragment.Detailed.part)
             o.Mapper.mapping.Detailed.placements)
      in
      Alcotest.(check bool) "has width strip or corner" true
        (List.mem Detailed.Width_strip parts || List.mem Detailed.Corner parts)


(* --- Parallel tree search through the whole pipeline --------------------------- *)

let spec_gen =
  QCheck.make
    ~print:(fun (s : Mm_workload.Gen.spec) ->
      Printf.sprintf "{segments=%d; banks=%d; ports=%d; configs=%d; seed=%d}"
        s.Mm_workload.Gen.segments s.Mm_workload.Gen.banks
        s.Mm_workload.Gen.ports s.Mm_workload.Gen.configs
        s.Mm_workload.Gen.seed)
    QCheck.Gen.(
      let* segments = int_range 3 8 in
      let* banks = int_range 4 8 in
      let* extra_ports = int_range 0 6 in
      let* configs = int_range 1 4 in
      let* seed = int_range 0 1_000_000 in
      return
        {
          Mm_workload.Gen.segments;
          banks;
          ports = banks + extra_ports;
          configs = configs * 5;
          seed;
        })

let prop_parallel_mapper_equivalent =
  qtest ~count:20 "mapper verdict and objective agree across parallelism 1/2/4"
    spec_gen (fun spec ->
      match Mm_workload.Gen.instance spec with
      | exception Invalid_argument _ -> QCheck.assume_fail ()
      | board, design ->
          let solve j =
            match Mapper.run ~options:(Mapper.options ~parallelism:j ()) board design with
            | Ok o ->
                `Mapped
                  ( o.Mapper.objective,
                    Validate.is_legal board design o.Mapper.mapping )
            | Error (Mapper.Unmappable _) -> `Unmappable
            | Error (Mapper.Retries_exhausted _) -> `Retries_exhausted
            | Error Mapper.Solver_limit -> `Solver_limit
          in
          let serial = solve 1 in
          let same = function
            | `Mapped (o, legal), `Mapped (o', legal') ->
                Float.abs (o -. o') <= 1e-6 *. Float.max 1.0 (Float.abs o)
                && legal = legal'
            | a, b -> a = b
          in
          List.for_all (fun j -> same (serial, solve j)) [ 2; 4 ])

(* --- tracing through the mapper ------------------------------------------- *)

let traced_mapper_run ?(time_limit = 30.0) board design =
  let tr = Mm_obs.Trace.create () in
  let options =
    Mapper.options
      ~solver_options:(Mm_lp.Solver.quick_options ~time_limit ())
      ~trace:tr ()
  in
  (match Mapper.run ~options board design with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Mapper.error_to_string e));
  match Mm_obs.Summary.of_lines (Mm_obs.Trace.dump_lines tr) with
  | Ok evs -> evs
  | Error e -> Alcotest.fail e

let test_trace_summary_all_table3_points () =
  (* every Table-3 design point must produce a trace the summary can
     parse and render *)
  List.iter
    (fun (point : Mm_workload.Table3.point) ->
      let board, design =
        Mm_workload.Gen.instance point.Mm_workload.Table3.spec
      in
      let evs = traced_mapper_run board design in
      Alcotest.(check bool) "has events" true (evs <> []);
      Alcotest.(check bool) "summary renders" true
        (String.length (Mm_obs.Summary.render evs) > 0);
      (* every traced pipeline records the facade and mapper spans *)
      let totals = Mm_obs.Summary.phase_totals evs in
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " span present") true
            (List.mem_assoc name totals))
        [ "presolve"; "bb"; "solve"; "ilp"; "detailed" ])
    Mm_workload.Table3.points

let test_trace_phase_sums () =
  (* point 9, the paper's largest: the per-phase span totals must
     account for the enclosing solve span to within 5% *)
  let point = List.nth Mm_workload.Table3.points 8 in
  let board, design = Mm_workload.Gen.instance point.Mm_workload.Table3.spec in
  let evs = traced_mapper_run board design in
  let totals = Mm_obs.Summary.phase_totals evs in
  let total name = Option.value (List.assoc_opt name totals) ~default:0.0 in
  let parts =
    total "presolve" +. total "cuts" +. total "heuristic" +. total "bb"
  in
  let solve = total "solve" in
  Alcotest.(check bool) "solve span recorded" true (solve > 0.0);
  Alcotest.(check bool) "phases sum to the solve span within 5%" true
    (Float.abs (parts -. solve) <= 0.05 *. solve)

let () =
  Alcotest.run "mm_mapping"
    [
      ( "fig3",
        [
          Alcotest.test_case "table2 bank" `Quick test_consumed_ports_fig3;
          Alcotest.test_case "two ports exact" `Quick test_consumed_ports_two_port_exact;
          prop_consumed_ports_monotone;
          prop_consumed_ports_bounds;
          prop_consumed_ports_never_underestimates;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "paper example" `Quick test_fig2_coefficients;
          Alcotest.test_case "exact fit" `Quick test_exact_fit_no_beta;
          Alcotest.test_case "narrow segment" `Quick test_narrow_segment;
          Alcotest.test_case "single config" `Quick test_single_config_bank;
          Alcotest.test_case "fits" `Quick test_fits;
        ] );
      ( "table2",
        [
          Alcotest.test_case "options" `Quick test_table2_options;
          Alcotest.test_case "two-port exactness" `Quick
            test_table2_two_ports_no_overestimate;
        ] );
      ( "cost",
        [
          Alcotest.test_case "components" `Quick test_cost_components;
          Alcotest.test_case "on-chip free pins" `Quick test_cost_onchip_free_pins;
        ] );
      ( "fragments",
        [
          prop_fragments_match_coefficients;
          prop_fragments_on_virtex;
          prop_fragment_count_matches_rectangle;
        ] );
      ( "detailed",
        [
          Alcotest.test_case "greedy legal" `Quick test_detailed_greedy_legal;
          Alcotest.test_case "overlap shares storage" `Quick
            test_detailed_overlap_shares_storage;
          Alcotest.test_case "conflicts cannot share" `Quick
            test_detailed_conflicting_cannot_share;
          Alcotest.test_case "validator catches corruption" `Quick
            test_validate_catches_corruption;
          Alcotest.test_case "detailed ILP direct" `Quick test_detailed_ilp_direct;
          Alcotest.test_case "fragment parts" `Quick test_instances_used_and_parts;
        ] );
      ( "global",
        [
          Alcotest.test_case "prefers on-chip" `Quick test_global_prefers_onchip;
          Alcotest.test_case "respects capacity" `Quick test_global_respects_capacity;
          Alcotest.test_case "unmappable" `Quick test_global_unmappable;
          Alcotest.test_case "no-good cut" `Quick test_global_forbidden_assignment;
          Alcotest.test_case "lifetime capacity cliques" `Quick
            test_global_lifetime_capacity_cliques;
          Alcotest.test_case "ports dominate capacity" `Quick
            test_port_constraint_dominates_capacity;
          prop_global_assignment_feasible;
        ] );
      ( "equivalence",
        [ prop_global_equals_complete; prop_global_optimal_vs_enumeration ] );
      ( "extensions",
        [
          Alcotest.test_case "multi-PU cost" `Quick test_multi_pu_cost;
          Alcotest.test_case "multi-PU assignment" `Quick test_multi_pu_assignment;
          Alcotest.test_case "multi-PU rejects" `Quick test_multi_pu_rejects;
          Alcotest.test_case "improved port values" `Quick
            test_improved_port_model_values;
          Alcotest.test_case "improved accepts table2" `Quick
            test_improved_accepts_all_table2_options;
          prop_improved_never_exceeds_fig3;
          Alcotest.test_case "improved enables mapping" `Quick
            test_improved_model_enables_mapping;
          Alcotest.test_case "arbitration port sharing" `Quick
            test_arbitration_enables_port_sharing;
          Alcotest.test_case "arbitration blocks conflicts" `Quick
            test_arbitration_still_blocks_conflicting;
          Alcotest.test_case "arbitration pipeline" `Quick
            test_mapper_arbitration_pipeline;
          prop_improved_pipeline_legal;
        ] );
      ( "parallel", [ prop_parallel_mapper_equivalent ] );
      ( "trace",
        [
          Alcotest.test_case "summary parses all table3 points" `Quick
            test_trace_summary_all_table3_points;
          Alcotest.test_case "phase sums on point 9" `Quick
            test_trace_phase_sums;
        ] );
      ( "mapper",
        [
          prop_pipeline_produces_legal_mappings;
          Alcotest.test_case "complete path" `Quick test_mapper_complete_path;
          Alcotest.test_case "ilp detailed engine" `Quick test_mapper_ilp_detailed_engine;
          Alcotest.test_case "report renders" `Quick test_report_renders;
          Alcotest.test_case "report contents" `Quick test_report_contents;
          Alcotest.test_case "lifetime chart" `Quick test_lifetime_chart;
          Alcotest.test_case "retry budget" `Quick test_mapper_retry_budget;
          Alcotest.test_case "fragmentation metric" `Quick test_fragmentation_metric;
          Alcotest.test_case "global through MPS" `Quick test_global_ilp_through_mps;
          Alcotest.test_case "global through LP format" `Quick
            test_global_ilp_through_lp_format;
        ] );
    ]
