open Mm_service
module J = Mm_obs.Json

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- generators ------------------------------------------------------------ *)

let knobs_gen =
  QCheck.Gen.(
    let* parallelism = int_range 0 4 in
    let* pricing = oneofl [ Mm_lp.Simplex.Devex; Mm_lp.Simplex.Dantzig ] in
    let* cuts = bool in
    let* cut_rounds = int_range 0 5 in
    let* max_cuts_per_round = int_range 1 100 in
    let* heuristics = bool in
    let* time_limit =
      oneof [ return None; map (fun f -> Some f) (float_range 0.125 8.0) ]
    in
    return
      (Knobs.make ~parallelism ~pricing ~cuts ~cut_rounds ~max_cuts_per_round
         ~heuristics ?time_limit ()))

let knobs_arb = QCheck.make ~print:(fun k -> J.to_string (Knobs.to_json k)) knobs_gen

let instance_of_seed seed =
  let rng = Mm_util.Prng.create seed in
  let board = Mm_workload.Gen.random_board rng in
  let design = Mm_workload.Gen.random_design rng ~segments:3 board in
  (board, design)

let request_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* id = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
    let* method_ =
      oneofl [ Mm_mapping.Mapper.Global_detailed; Mm_mapping.Mapper.Complete_flat ]
    in
    let* knobs = knobs_gen in
    let board, design = instance_of_seed seed in
    return (Request.make ~id ~method_ ~knobs board design))

let request_arb =
  QCheck.make ~print:(fun r -> J.to_string (Request.to_json r)) request_gen

let response_gen =
  QCheck.Gen.(
    let id_gen = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
    oneof
      [
        (let* id = id_gen in
         let* cache_hit = bool in
         let* warm_solves = int_range 0 50 in
         let* objective = float_range 0.0 1e6 in
         return
           (Request.Ok_response
              {
                id;
                cache_hit;
                warm_solves;
                report = J.Obj [ ("objective", J.Num objective) ];
              }));
        (let* id = id_gen in
         let* code =
           oneofl
             Request.
               [
                 Bad_request; Overloaded; Unmappable; Retries_exhausted;
                 Solver_limit; Server_error;
               ]
         in
         let* message = string_size ~gen:printable (int_range 0 30) in
         return (Request.Error_response { id; code; message }));
      ])

let response_arb =
  QCheck.make
    ~print:(fun r -> J.to_string (Request.response_to_json r))
    response_gen

(* --- codec round-trips ------------------------------------------------------ *)

let prop_knobs_roundtrip =
  qtest "Knobs.of_json (to_json k) = Ok k" knobs_arb (fun k ->
      match Knobs.of_json (Knobs.to_json k) with
      | Ok k' -> k' = k
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_knobs_fingerprint_ignores_time_limit =
  qtest "fingerprint_string drops the time limit" knobs_arb (fun k ->
      let k' = { k with Knobs.time_limit = Some 42.0 } in
      Knobs.fingerprint_string k = Knobs.fingerprint_string k')

let prop_request_roundtrip =
  qtest ~count:40 "Request.of_json (to_json r) round-trips" request_arb
    (fun r ->
      match Request.of_json (Request.to_json r) with
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e
      | Ok r' ->
          r'.Request.id = r.Request.id
          && r'.Request.method_ = r.Request.method_
          && r'.Request.knobs = r.Request.knobs
          && Mm_io.Board_file.to_string r'.Request.board
             = Mm_io.Board_file.to_string r.Request.board
          && Mm_io.Design_file.to_string r'.Request.design
             = Mm_io.Design_file.to_string r.Request.design)

let prop_request_fingerprint_canonical =
  (* the fingerprint must not care about input formatting: re-parsing
     the canonical text yields the same key *)
  qtest ~count:40 "fingerprint survives a text round-trip" request_arb
    (fun r ->
      let board =
        Result.get_ok
          (Mm_io.Board_file.parse (Mm_io.Board_file.to_string r.Request.board))
      in
      let design =
        Result.get_ok
          (Mm_io.Design_file.parse
             (Mm_io.Design_file.to_string r.Request.design))
      in
      let r' =
        Request.make ~id:"other-id" ~method_:r.Request.method_
          ~knobs:r.Request.knobs board design
      in
      Request.fingerprint r' = Request.fingerprint r)

let prop_response_roundtrip =
  qtest "response_of_json (response_to_json r) = Ok r" response_arb (fun r ->
      match Request.response_of_json (Request.response_to_json r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_wire_line_roundtrip =
  qtest ~count:40 "requests survive the printed wire line" request_arb
    (fun r ->
      let line = J.to_string (Request.to_json r) in
      match J.of_string line with
      | Error e -> QCheck.Test.fail_reportf "json parse: %s" e
      | Ok json -> (
          match Request.of_json json with
          | Ok r' -> Request.fingerprint r' = Request.fingerprint r
          | Error e -> QCheck.Test.fail_reportf "decode: %s" e))

(* --- Report.to_json --------------------------------------------------------- *)

let small_instance () =
  Mm_workload.Gen.instance
    { Mm_workload.Gen.segments = 4; banks = 4; ports = 6; configs = 5; seed = 7 }

let solved_report () =
  let board, design = small_instance () in
  match Mm_mapping.Mapper.run board design with
  | Error e -> Alcotest.failf "mapper: %s" (Mm_mapping.Mapper.error_to_string e)
  | Ok o -> (board, design, o, Mm_mapping.Report.of_outcome board design o)

let test_report_json_shape () =
  let _, design, o, report = solved_report () in
  let json = Mm_mapping.Report.to_json report in
  let str path = Option.bind (J.member path json) J.to_str in
  let num path = Option.bind (J.member path json) J.to_float in
  Alcotest.(check (option string)) "method" (Some "global") (str "method");
  Alcotest.(check (option string)) "status" (Some "optimal") (str "status");
  Alcotest.(check (option (float 1e-6)))
    "objective" (Some o.Mm_mapping.Mapper.objective) (num "objective");
  (match J.member "attempts" json with
  | Some (J.List attempts) ->
      Alcotest.(check int)
        "one attempt entry per mapper attempt"
        (List.length o.Mm_mapping.Mapper.attempts)
        (List.length attempts)
  | _ -> Alcotest.fail "attempts array missing");
  (match J.member "assignment" json with
  | Some (J.List rows) ->
      Alcotest.(check int)
        "assignment covers every segment"
        (Array.length design.Mm_design.Design.segments)
        (List.length rows)
  | _ -> Alcotest.fail "assignment array missing");
  match J.member "lp" json with
  | Some lp ->
      Alcotest.(check bool)
        "lp.nodes present" true
        (Option.is_some (J.member "nodes" lp))
  | None -> Alcotest.fail "lp object missing"

let test_report_json_parses_back () =
  let _, _, _, report = solved_report () in
  let line = J.to_string (Mm_mapping.Report.to_json report) in
  match J.of_string line with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON does not re-parse: %s" e

let test_mapper_attempts_recorded () =
  let board, design = small_instance () in
  match Mm_mapping.Mapper.run board design with
  | Error e -> Alcotest.failf "mapper: %s" (Mm_mapping.Mapper.error_to_string e)
  | Ok o ->
      Alcotest.(check int)
        "attempts = retries + 1"
        (o.Mm_mapping.Mapper.retries + 1)
        (List.length o.Mm_mapping.Mapper.attempts);
      let last =
        List.nth o.Mm_mapping.Mapper.attempts
          (List.length o.Mm_mapping.Mapper.attempts - 1)
      in
      Alcotest.(check (option string))
        "winning attempt has no detailed failure" None
        last.Mm_mapping.Mapper.detailed_failure;
      List.iteri
        (fun i (a : Mm_mapping.Mapper.attempt) ->
          Alcotest.(check int) "attempt indices are chronological" i
            a.Mm_mapping.Mapper.index)
        o.Mm_mapping.Mapper.attempts

(* --- cache ------------------------------------------------------------------ *)

let test_cache_lease_semantics () =
  let c = Cache.create ~capacity:2 in
  let l1 = Cache.acquire c "k1" in
  Alcotest.(check bool) "first acquire misses" false l1.Cache.hit;
  (* concurrent same-key acquire must not share the leased state *)
  let l1' = Cache.acquire c "k1" in
  Alcotest.(check bool) "racing acquire misses" false l1'.Cache.hit;
  Cache.release c l1;
  Cache.release c l1';
  let l2 = Cache.acquire c "k1" in
  Alcotest.(check bool) "re-acquire after release hits" true l2.Cache.hit;
  Cache.release c l2;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "entries" 1 s.Cache.entries

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  let touch k = Cache.release c (Cache.acquire c k) in
  touch "a";
  touch "b";
  touch "a";
  (* "b" is now least recently used *)
  touch "c";
  Alcotest.(check int) "one eviction counted" 1 (Cache.stats c).Cache.evictions;
  let la = Cache.acquire c "a" in
  Alcotest.(check bool) "recently-used survives" true la.Cache.hit;
  Cache.release c la;
  let lb = Cache.acquire c "b" in
  Alcotest.(check bool) "LRU entry was evicted" false lb.Cache.hit;
  Cache.release c lb

let test_cache_capacity_zero () =
  let c = Cache.create ~capacity:0 in
  let touch k = Cache.release c (Cache.acquire c k) in
  touch "a";
  touch "a";
  let s = Cache.stats c in
  Alcotest.(check int) "never hits" 0 s.Cache.hits;
  Alcotest.(check int) "nothing retained" 0 s.Cache.entries

(* --- engine ----------------------------------------------------------------- *)

let test_engine_warm_cache_hits () =
  let board, design = small_instance () in
  let engine = Engine.create () in
  let req = Request.make ~id:"r" board design in
  let once () =
    match Engine.handle engine req with
    | Request.Ok_response { cache_hit; warm_solves; report; _ } ->
        (cache_hit, warm_solves, report)
    | Request.Error_response { message; _ } ->
        Alcotest.failf "engine error: %s" message
  in
  let hit1, solves1, report1 = once () in
  Alcotest.(check bool) "first solve is a miss" false hit1;
  Alcotest.(check int) "fresh state has no training" 0 solves1;
  let hit2, solves2, report2 = once () in
  Alcotest.(check bool) "second solve hits" true hit2;
  Alcotest.(check bool) "trained by the first solve" true (solves2 > 0);
  (* identical objectives warm and cold: warm starts must not change
     the optimum *)
  let obj report =
    match Option.bind (J.member "objective" report) J.to_float with
    | Some x -> x
    | None -> Alcotest.fail "no objective in report"
  in
  Alcotest.(check (float 1e-6)) "same objective" (obj report1) (obj report2);
  let warm =
    match J.member "lp" report2 with
    | Some lp -> J.member "warm_applied" lp
    | None -> None
  in
  match warm with
  | Some (J.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "warm solve did not record warm_applied"

let test_engine_bad_request () =
  let engine = Engine.create () in
  match Engine.handle_json engine (J.Obj [ ("id", J.Str "x") ]) with
  | Request.Error_response { id; code; _ } ->
      Alcotest.(check string) "echoes id" "x" id;
      Alcotest.(check string)
        "bad_request" "bad_request"
        (Request.error_code_to_string code)
  | Request.Ok_response _ -> Alcotest.fail "expected an error response"

let test_engine_time_limit () =
  (* an unreachably small budget must surface as solver_limit, the
     service's request-timeout path *)
  let board, design =
    Mm_workload.Gen.instance
      {
        Mm_workload.Gen.segments = 10; banks = 8; ports = 14; configs = 10;
        seed = 11;
      }
  in
  let engine = Engine.create () in
  let knobs = Knobs.make ~time_limit:1e-9 ~heuristics:false () in
  let req = Request.make ~id:"t" ~knobs board design in
  match Engine.handle engine req with
  | Request.Error_response { code = Request.Solver_limit; _ } -> ()
  | Request.Error_response { code; message; _ } ->
      Alcotest.failf "expected solver_limit, got %s: %s"
        (Request.error_code_to_string code)
        message
  | Request.Ok_response _ ->
      (* tiny instances may still solve within the first time check;
         accept but require the report to exist *)
      ()

(* --- server ----------------------------------------------------------------- *)

let with_server ?(workers = 2) ?(queue_capacity = 16) f =
  let dir = Filename.temp_file "mm_service_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "mm.sock" in
  let opts = Server.options ~workers ~queue_capacity socket in
  let ready_mu = Mutex.create () in
  let ready_cv = Condition.create () in
  let ready = ref false in
  let on_ready () =
    Mutex.lock ready_mu;
    ready := true;
    Condition.signal ready_cv;
    Mutex.unlock ready_mu
  in
  let stats = ref None in
  let srv = Thread.create (fun () -> stats := Some (Server.run ~on_ready opts)) () in
  Mutex.lock ready_mu;
  while not !ready do
    Condition.wait ready_cv ready_mu
  done;
  Mutex.unlock ready_mu;
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.request ~socket {|{"id":"fin","op":"shutdown"}|});
      Thread.join srv;
      (try Sys.remove socket with Sys_error _ -> ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () -> f socket)
  |> fun r -> (r, !stats)

let decode_response line =
  match J.of_string line with
  | Error e -> Alcotest.failf "response is not JSON: %s (%s)" e line
  | Ok json -> (
      match Request.response_of_json json with
      | Ok r -> r
      | Error e -> Alcotest.failf "response does not decode: %s (%s)" e line)

let test_server_concurrent_clients () =
  let board, design = small_instance () in
  let nclients = 4 in
  let per_client = 2 in
  let (), stats =
    with_server (fun socket ->
        let results = Array.make nclients (Error "never ran") in
        let client i =
          let lines =
            List.init per_client (fun j ->
                let id = Printf.sprintf "c%d-%d" i j in
                J.to_string
                  (Request.to_json (Request.make ~id board design)))
          in
          results.(i) <- Client.roundtrip ~socket lines
        in
        let threads = List.init nclients (fun i -> Thread.create client i) in
        List.iter Thread.join threads;
        let replies =
          Array.to_list results
          |> List.concat_map (function
               | Ok lines -> lines
               | Error e -> Alcotest.failf "client failed: %s" e)
        in
        Alcotest.(check int)
          "every request answered"
          (nclients * per_client)
          (List.length replies);
        List.iter
          (fun line ->
            match decode_response line with
            | Request.Ok_response r ->
                Alcotest.(check bool) "id echoed" true (String.length r.id > 0)
            | Request.Error_response { code; message; _ } ->
                Alcotest.failf "unexpected error %s: %s"
                  (Request.error_code_to_string code)
                  message)
          replies)
  in
  match stats with
  | None -> Alcotest.fail "server did not return stats"
  | Some s ->
      Alcotest.(check int)
        "every request hit the cache path"
        (nclients * per_client)
        (s.Cache.hits + s.Cache.misses);
      (* all clients solve the same instance: once one solve has
         trained the entry, the rest hit *)
      Alcotest.(check bool) "warm cache was reused" true (s.Cache.hits > 0)

let test_server_backpressure () =
  let board, design = small_instance () in
  let (), _ =
    with_server ~queue_capacity:0 (fun socket ->
        let line =
          J.to_string (Request.to_json (Request.make ~id:"bp" board design))
        in
        match Client.request ~socket line with
        | Error e -> Alcotest.failf "client: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { id; code = Request.Overloaded; _ } ->
                Alcotest.(check string) "id echoed" "bp" id
            | Request.Error_response { code; _ } ->
                Alcotest.failf "expected overloaded, got %s"
                  (Request.error_code_to_string code)
            | Request.Ok_response _ ->
                Alcotest.fail "zero-capacity queue accepted a request"))
  in
  ()

let test_server_reclaims_stale_socket () =
  (* a socket file left by a crashed daemon (bound but no listener
     behind it) must be reclaimed, not refused with EADDRINUSE *)
  let dir = Filename.temp_file "mm_service_stale" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "mm.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;
  (* the dead path is still on disk *)
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists socket);
  let opts = Server.options ~workers:1 socket in
  let ready_mu = Mutex.create () in
  let ready_cv = Condition.create () in
  let ready = ref false in
  let on_ready () =
    Mutex.lock ready_mu;
    ready := true;
    Condition.signal ready_cv;
    Mutex.unlock ready_mu
  in
  let srv = Thread.create (fun () -> ignore (Server.run ~on_ready opts)) () in
  Mutex.lock ready_mu;
  while not !ready do
    Condition.wait ready_cv ready_mu
  done;
  Mutex.unlock ready_mu;
  ignore (Client.request ~socket {|{"id":"fin","op":"shutdown"}|});
  Thread.join srv;
  (try Sys.remove socket with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_server_refuses_live_socket () =
  (* a second daemon pointed at a live daemon's socket must raise
     Already_running instead of stealing the path *)
  let (), _ =
    with_server (fun socket ->
        (match Server.run (Server.options ~workers:1 socket) with
        | _ -> Alcotest.fail "second server bound a live socket"
        | exception Server.Already_running p ->
            Alcotest.(check string) "path reported" socket p);
        (* the probe must not have unlinked the live daemon's socket *)
        Alcotest.(check bool) "socket still present" true
          (Sys.file_exists socket))
  in
  ()

let test_server_control_ops () =
  let (), _ =
    with_server (fun socket ->
        (match Client.request ~socket {|{"id":"s","op":"stats"}|} with
        | Error e -> Alcotest.failf "stats: %s" e
        | Ok reply -> (
            match J.of_string reply with
            | Error e -> Alcotest.failf "stats reply not JSON: %s" e
            | Ok json ->
                Alcotest.(check (option string))
                  "stats id" (Some "s")
                  (Option.bind (J.member "id" json) J.to_str);
                Alcotest.(check bool)
                  "has cache object" true
                  (Option.is_some (J.member "cache" json))));
        (match Client.request ~socket {|{"id":"u","op":"reticulate"}|} with
        | Error e -> Alcotest.failf "unknown op: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { code = Request.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "unknown op must be bad_request"));
        match Client.request ~socket "not json at all" with
        | Error e -> Alcotest.failf "garbage line: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { code = Request.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "garbage must be bad_request"))
  in
  ()

let () =
  Alcotest.run "mm_service"
    [
      ( "codecs",
        [
          prop_knobs_roundtrip;
          prop_knobs_fingerprint_ignores_time_limit;
          prop_request_roundtrip;
          prop_request_fingerprint_canonical;
          prop_response_roundtrip;
          prop_wire_line_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "json shape" `Quick test_report_json_shape;
          Alcotest.test_case "json re-parses" `Quick test_report_json_parses_back;
          Alcotest.test_case "mapper attempts" `Quick
            test_mapper_attempts_recorded;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lease semantics" `Quick test_cache_lease_semantics;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "capacity zero" `Quick test_cache_capacity_zero;
        ] );
      ( "engine",
        [
          Alcotest.test_case "warm cache hits" `Quick
            test_engine_warm_cache_hits;
          Alcotest.test_case "bad request" `Quick test_engine_bad_request;
          Alcotest.test_case "time limit" `Quick test_engine_time_limit;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "backpressure" `Quick test_server_backpressure;
          Alcotest.test_case "reclaims stale socket" `Quick
            test_server_reclaims_stale_socket;
          Alcotest.test_case "refuses live socket" `Quick
            test_server_refuses_live_socket;
          Alcotest.test_case "control ops" `Quick test_server_control_ops;
        ] );
    ]
