open Mm_service
module J = Mm_obs.Json

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- generators ------------------------------------------------------------ *)

let knobs_gen =
  QCheck.Gen.(
    let* parallelism = int_range 0 4 in
    let* pricing = oneofl [ Mm_lp.Simplex.Devex; Mm_lp.Simplex.Dantzig ] in
    let* cuts = bool in
    let* cut_rounds = int_range 0 5 in
    let* max_cuts_per_round = int_range 1 100 in
    let* heuristics = bool in
    let* time_limit =
      oneof [ return None; map (fun f -> Some f) (float_range 0.125 8.0) ]
    in
    return
      (Knobs.make ~parallelism ~pricing ~cuts ~cut_rounds ~max_cuts_per_round
         ~heuristics ?time_limit ()))

let knobs_arb = QCheck.make ~print:(fun k -> J.to_string (Knobs.to_json k)) knobs_gen

let instance_of_seed seed =
  let rng = Mm_util.Prng.create seed in
  let board = Mm_workload.Gen.random_board rng in
  let design = Mm_workload.Gen.random_design rng ~segments:3 board in
  (board, design)

let request_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* id = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
    let* method_ =
      oneofl [ Mm_mapping.Mapper.Global_detailed; Mm_mapping.Mapper.Complete_flat ]
    in
    let* knobs = knobs_gen in
    let board, design = instance_of_seed seed in
    return (Request.make ~id ~method_ ~knobs board design))

let request_arb =
  QCheck.make ~print:(fun r -> J.to_string (Request.to_json r)) request_gen

let response_gen =
  QCheck.Gen.(
    let id_gen = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
    oneof
      [
        (let* id = id_gen in
         let* cache_hit = bool in
         let* warm_solves = int_range 0 50 in
         let* objective = float_range 0.0 1e6 in
         return
           (Request.Ok_response
              {
                id;
                cache_hit;
                warm_solves;
                report = J.Obj [ ("objective", J.Num objective) ];
              }));
        (let* id = id_gen in
         let* code =
           oneofl
             Request.
               [
                 Bad_request; Overloaded; Unmappable; Retries_exhausted;
                 Solver_limit; Server_error;
               ]
         in
         let* message = string_size ~gen:printable (int_range 0 30) in
         return (Request.Error_response { id; code; message }));
      ])

let response_arb =
  QCheck.make
    ~print:(fun r -> J.to_string (Request.response_to_json r))
    response_gen

(* --- codec round-trips ------------------------------------------------------ *)

let prop_knobs_roundtrip =
  qtest "Knobs.of_json (to_json k) = Ok k" knobs_arb (fun k ->
      match Knobs.of_json (Knobs.to_json k) with
      | Ok k' -> k' = k
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_knobs_fingerprint_ignores_time_limit =
  qtest "fingerprint_string drops the time limit" knobs_arb (fun k ->
      let k' = { k with Knobs.time_limit = Some 42.0 } in
      Knobs.fingerprint_string k = Knobs.fingerprint_string k')

let prop_request_roundtrip =
  qtest ~count:40 "Request.of_json (to_json r) round-trips" request_arb
    (fun r ->
      match Request.of_json (Request.to_json r) with
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e
      | Ok r' ->
          r'.Request.id = r.Request.id
          && r'.Request.method_ = r.Request.method_
          && r'.Request.knobs = r.Request.knobs
          && Mm_io.Board_file.to_string r'.Request.board
             = Mm_io.Board_file.to_string r.Request.board
          && Mm_io.Design_file.to_string r'.Request.design
             = Mm_io.Design_file.to_string r.Request.design)

let prop_request_fingerprint_canonical =
  (* the fingerprint must not care about input formatting: re-parsing
     the canonical text yields the same key *)
  qtest ~count:40 "fingerprint survives a text round-trip" request_arb
    (fun r ->
      let board =
        Result.get_ok
          (Mm_io.Board_file.parse (Mm_io.Board_file.to_string r.Request.board))
      in
      let design =
        Result.get_ok
          (Mm_io.Design_file.parse
             (Mm_io.Design_file.to_string r.Request.design))
      in
      let r' =
        Request.make ~id:"other-id" ~method_:r.Request.method_
          ~knobs:r.Request.knobs board design
      in
      Request.fingerprint r' = Request.fingerprint r)

let prop_response_roundtrip =
  qtest "response_of_json (response_to_json r) = Ok r" response_arb (fun r ->
      match Request.response_of_json (Request.response_to_json r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_wire_line_roundtrip =
  qtest ~count:40 "requests survive the printed wire line" request_arb
    (fun r ->
      let line = J.to_string (Request.to_json r) in
      match J.of_string line with
      | Error e -> QCheck.Test.fail_reportf "json parse: %s" e
      | Ok json -> (
          match Request.of_json json with
          | Ok r' -> Request.fingerprint r' = Request.fingerprint r
          | Error e -> QCheck.Test.fail_reportf "decode: %s" e))

(* --- Report.to_json --------------------------------------------------------- *)

let small_instance () =
  Mm_workload.Gen.instance
    { Mm_workload.Gen.segments = 4; banks = 4; ports = 6; configs = 5; seed = 7 }

let solved_report () =
  let board, design = small_instance () in
  match Mm_mapping.Mapper.run board design with
  | Error e -> Alcotest.failf "mapper: %s" (Mm_mapping.Mapper.error_to_string e)
  | Ok o -> (board, design, o, Mm_mapping.Report.of_outcome board design o)

let test_report_json_shape () =
  let _, design, o, report = solved_report () in
  let json = Mm_mapping.Report.to_json report in
  let str path = Option.bind (J.member path json) J.to_str in
  let num path = Option.bind (J.member path json) J.to_float in
  Alcotest.(check (option string)) "method" (Some "global") (str "method");
  Alcotest.(check (option string)) "status" (Some "optimal") (str "status");
  Alcotest.(check (option (float 1e-6)))
    "objective" (Some o.Mm_mapping.Mapper.objective) (num "objective");
  (match J.member "attempts" json with
  | Some (J.List attempts) ->
      Alcotest.(check int)
        "one attempt entry per mapper attempt"
        (List.length o.Mm_mapping.Mapper.attempts)
        (List.length attempts)
  | _ -> Alcotest.fail "attempts array missing");
  (match J.member "assignment" json with
  | Some (J.List rows) ->
      Alcotest.(check int)
        "assignment covers every segment"
        (Array.length design.Mm_design.Design.segments)
        (List.length rows)
  | _ -> Alcotest.fail "assignment array missing");
  match J.member "lp" json with
  | Some lp ->
      Alcotest.(check bool)
        "lp.nodes present" true
        (Option.is_some (J.member "nodes" lp))
  | None -> Alcotest.fail "lp object missing"

let test_report_json_parses_back () =
  let _, _, _, report = solved_report () in
  let line = J.to_string (Mm_mapping.Report.to_json report) in
  match J.of_string line with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON does not re-parse: %s" e

let test_mapper_attempts_recorded () =
  let board, design = small_instance () in
  match Mm_mapping.Mapper.run board design with
  | Error e -> Alcotest.failf "mapper: %s" (Mm_mapping.Mapper.error_to_string e)
  | Ok o ->
      Alcotest.(check int)
        "attempts = retries + 1"
        (o.Mm_mapping.Mapper.retries + 1)
        (List.length o.Mm_mapping.Mapper.attempts);
      let last =
        List.nth o.Mm_mapping.Mapper.attempts
          (List.length o.Mm_mapping.Mapper.attempts - 1)
      in
      Alcotest.(check (option string))
        "winning attempt has no detailed failure" None
        last.Mm_mapping.Mapper.detailed_failure;
      List.iteri
        (fun i (a : Mm_mapping.Mapper.attempt) ->
          Alcotest.(check int) "attempt indices are chronological" i
            a.Mm_mapping.Mapper.index)
        o.Mm_mapping.Mapper.attempts

(* --- cache ------------------------------------------------------------------ *)

let test_cache_lease_semantics () =
  let c = Cache.create ~capacity:2 in
  let l1 = Cache.acquire c "k1" in
  Alcotest.(check bool) "first acquire misses" false l1.Cache.hit;
  (* concurrent same-key acquire must not share the leased state *)
  let l1' = Cache.acquire c "k1" in
  Alcotest.(check bool) "racing acquire misses" false l1'.Cache.hit;
  Cache.release c l1;
  Cache.release c l1';
  let l2 = Cache.acquire c "k1" in
  Alcotest.(check bool) "re-acquire after release hits" true l2.Cache.hit;
  Cache.release c l2;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "entries" 1 s.Cache.entries

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  let touch k = Cache.release c (Cache.acquire c k) in
  touch "a";
  touch "b";
  touch "a";
  (* "b" is now least recently used *)
  touch "c";
  Alcotest.(check int) "one eviction counted" 1 (Cache.stats c).Cache.evictions;
  let la = Cache.acquire c "a" in
  Alcotest.(check bool) "recently-used survives" true la.Cache.hit;
  Cache.release c la;
  let lb = Cache.acquire c "b" in
  Alcotest.(check bool) "LRU entry was evicted" false lb.Cache.hit;
  Cache.release c lb

let test_cache_capacity_zero () =
  let c = Cache.create ~capacity:0 in
  let touch k = Cache.release c (Cache.acquire c k) in
  touch "a";
  touch "a";
  let s = Cache.stats c in
  Alcotest.(check int) "never hits" 0 s.Cache.hits;
  Alcotest.(check int) "nothing retained" 0 s.Cache.entries

(* --- engine ----------------------------------------------------------------- *)

let test_engine_warm_cache_hits () =
  let board, design = small_instance () in
  let engine = Engine.create () in
  let req = Request.make ~id:"r" board design in
  let once () =
    match Engine.handle engine req with
    | Request.Ok_response { cache_hit; warm_solves; report; _ } ->
        (cache_hit, warm_solves, report)
    | Request.Error_response { message; _ } ->
        Alcotest.failf "engine error: %s" message
  in
  let hit1, solves1, report1 = once () in
  Alcotest.(check bool) "first solve is a miss" false hit1;
  Alcotest.(check int) "fresh state has no training" 0 solves1;
  let hit2, solves2, report2 = once () in
  Alcotest.(check bool) "second solve hits" true hit2;
  Alcotest.(check bool) "trained by the first solve" true (solves2 > 0);
  (* identical objectives warm and cold: warm starts must not change
     the optimum *)
  let obj report =
    match Option.bind (J.member "objective" report) J.to_float with
    | Some x -> x
    | None -> Alcotest.fail "no objective in report"
  in
  Alcotest.(check (float 1e-6)) "same objective" (obj report1) (obj report2);
  let warm =
    match J.member "lp" report2 with
    | Some lp -> J.member "warm_applied" lp
    | None -> None
  in
  match warm with
  | Some (J.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "warm solve did not record warm_applied"

let test_engine_bad_request () =
  let engine = Engine.create () in
  match Engine.handle_json engine (J.Obj [ ("id", J.Str "x") ]) with
  | Request.Error_response { id; code; _ } ->
      Alcotest.(check string) "echoes id" "x" id;
      Alcotest.(check string)
        "bad_request" "bad_request"
        (Request.error_code_to_string code)
  | Request.Ok_response _ -> Alcotest.fail "expected an error response"

let test_engine_time_limit () =
  (* an unreachably small budget must surface as solver_limit, the
     service's request-timeout path *)
  let board, design =
    Mm_workload.Gen.instance
      {
        Mm_workload.Gen.segments = 10; banks = 8; ports = 14; configs = 10;
        seed = 11;
      }
  in
  let engine = Engine.create () in
  let knobs = Knobs.make ~time_limit:1e-9 ~heuristics:false () in
  let req = Request.make ~id:"t" ~knobs board design in
  match Engine.handle engine req with
  | Request.Error_response { code = Request.Solver_limit; _ } -> ()
  | Request.Error_response { code; message; _ } ->
      Alcotest.failf "expected solver_limit, got %s: %s"
        (Request.error_code_to_string code)
        message
  | Request.Ok_response _ ->
      (* tiny instances may still solve within the first time check;
         accept but require the report to exist *)
      ()

(* --- server ----------------------------------------------------------------- *)

let with_server ?(workers = 2) ?(queue_capacity = 16) ?(max_batch = 1)
    ?(batch_linger_ms = 0.) ?cache_file f =
  let dir = Filename.temp_file "mm_service_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "mm.sock" in
  let opts =
    Server.options ~workers ~queue_capacity ~max_batch ~batch_linger_ms
      ?cache_file socket
  in
  let ready_mu = Mutex.create () in
  let ready_cv = Condition.create () in
  let ready = ref false in
  let on_ready () =
    Mutex.lock ready_mu;
    ready := true;
    Condition.signal ready_cv;
    Mutex.unlock ready_mu
  in
  let stats = ref None in
  let srv = Thread.create (fun () -> stats := Some (Server.run ~on_ready opts)) () in
  Mutex.lock ready_mu;
  while not !ready do
    Condition.wait ready_cv ready_mu
  done;
  Mutex.unlock ready_mu;
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.request ~socket {|{"id":"fin","op":"shutdown"}|});
      Thread.join srv;
      (try Sys.remove socket with Sys_error _ -> ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () -> f socket)
  |> fun r -> (r, !stats)

let decode_response line =
  match J.of_string line with
  | Error e -> Alcotest.failf "response is not JSON: %s (%s)" e line
  | Ok json -> (
      match Request.response_of_json json with
      | Ok r -> r
      | Error e -> Alcotest.failf "response does not decode: %s (%s)" e line)

let test_server_concurrent_clients () =
  let board, design = small_instance () in
  let nclients = 4 in
  let per_client = 2 in
  let (), stats =
    with_server (fun socket ->
        let results = Array.make nclients (Error "never ran") in
        let client i =
          let lines =
            List.init per_client (fun j ->
                let id = Printf.sprintf "c%d-%d" i j in
                J.to_string
                  (Request.to_json (Request.make ~id board design)))
          in
          results.(i) <- Client.roundtrip ~socket lines
        in
        let threads = List.init nclients (fun i -> Thread.create client i) in
        List.iter Thread.join threads;
        let replies =
          Array.to_list results
          |> List.concat_map (function
               | Ok lines -> lines
               | Error e -> Alcotest.failf "client failed: %s" e)
        in
        Alcotest.(check int)
          "every request answered"
          (nclients * per_client)
          (List.length replies);
        List.iter
          (fun line ->
            match decode_response line with
            | Request.Ok_response r ->
                Alcotest.(check bool) "id echoed" true (String.length r.id > 0)
            | Request.Error_response { code; message; _ } ->
                Alcotest.failf "unexpected error %s: %s"
                  (Request.error_code_to_string code)
                  message)
          replies)
  in
  match stats with
  | None -> Alcotest.fail "server did not return stats"
  | Some s ->
      Alcotest.(check int)
        "every request hit the cache path"
        (nclients * per_client)
        (s.Cache.hits + s.Cache.misses);
      (* all clients solve the same instance: once one solve has
         trained the entry, the rest hit *)
      Alcotest.(check bool) "warm cache was reused" true (s.Cache.hits > 0)

let test_server_backpressure () =
  let board, design = small_instance () in
  let (), _ =
    with_server ~queue_capacity:0 (fun socket ->
        let line =
          J.to_string (Request.to_json (Request.make ~id:"bp" board design))
        in
        match Client.request ~socket line with
        | Error e -> Alcotest.failf "client: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { id; code = Request.Overloaded; _ } ->
                Alcotest.(check string) "id echoed" "bp" id
            | Request.Error_response { code; _ } ->
                Alcotest.failf "expected overloaded, got %s"
                  (Request.error_code_to_string code)
            | Request.Ok_response _ ->
                Alcotest.fail "zero-capacity queue accepted a request"))
  in
  ()

let test_server_reclaims_stale_socket () =
  (* a socket file left by a crashed daemon (bound but no listener
     behind it) must be reclaimed, not refused with EADDRINUSE *)
  let dir = Filename.temp_file "mm_service_stale" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "mm.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;
  (* the dead path is still on disk *)
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists socket);
  let opts = Server.options ~workers:1 socket in
  let ready_mu = Mutex.create () in
  let ready_cv = Condition.create () in
  let ready = ref false in
  let on_ready () =
    Mutex.lock ready_mu;
    ready := true;
    Condition.signal ready_cv;
    Mutex.unlock ready_mu
  in
  let srv = Thread.create (fun () -> ignore (Server.run ~on_ready opts)) () in
  Mutex.lock ready_mu;
  while not !ready do
    Condition.wait ready_cv ready_mu
  done;
  Mutex.unlock ready_mu;
  ignore (Client.request ~socket {|{"id":"fin","op":"shutdown"}|});
  Thread.join srv;
  (try Sys.remove socket with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_server_refuses_live_socket () =
  (* a second daemon pointed at a live daemon's socket must raise
     Already_running instead of stealing the path *)
  let (), _ =
    with_server (fun socket ->
        (match Server.run (Server.options ~workers:1 socket) with
        | _ -> Alcotest.fail "second server bound a live socket"
        | exception Server.Already_running p ->
            Alcotest.(check string) "path reported" socket p);
        (* the probe must not have unlinked the live daemon's socket *)
        Alcotest.(check bool) "socket still present" true
          (Sys.file_exists socket))
  in
  ()

let test_server_control_ops () =
  let (), _ =
    with_server (fun socket ->
        (match Client.request ~socket {|{"id":"s","op":"stats"}|} with
        | Error e -> Alcotest.failf "stats: %s" e
        | Ok reply -> (
            match J.of_string reply with
            | Error e -> Alcotest.failf "stats reply not JSON: %s" e
            | Ok json ->
                Alcotest.(check (option string))
                  "stats id" (Some "s")
                  (Option.bind (J.member "id" json) J.to_str);
                Alcotest.(check bool)
                  "has cache object" true
                  (Option.is_some (J.member "cache" json))));
        (match Client.request ~socket {|{"id":"u","op":"reticulate"}|} with
        | Error e -> Alcotest.failf "unknown op: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { code = Request.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "unknown op must be bad_request"));
        match Client.request ~socket "not json at all" with
        | Error e -> Alcotest.failf "garbage line: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { code = Request.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "garbage must be bad_request"))
  in
  ()

(* --- batch coalescing ------------------------------------------------------- *)

let prop_batch_key_tracks_knob_fingerprint =
  (* two requests for the same board/method share a batch iff their
     knobs agree on every fingerprinted field — any solver-visible
     difference must separate them *)
  qtest ~count:60 "batch key separates exactly on knob fingerprint"
    (QCheck.pair request_arb knobs_arb) (fun (r, k2) ->
      let r2 = { r with Request.knobs = k2 } in
      let same_fp =
        Knobs.fingerprint_string r.Request.knobs = Knobs.fingerprint_string k2
      in
      (Request.batch_key r = Request.batch_key r2) = same_fp)

let prop_batch_key_ignores_time_limit =
  qtest ~count:40 "time limit never separates a batch" request_arb (fun r ->
      let r2 =
        {
          r with
          Request.knobs = { r.Request.knobs with Knobs.time_limit = Some 42.0 };
        }
      in
      Request.batch_key r = Request.batch_key r2)

let test_batch_key_shares_across_designs () =
  (* different designs on one board coalesce (same batch key) but must
     not share warm state (different fingerprint) *)
  let board, design = small_instance () in
  let rng = Mm_util.Prng.create 99 in
  let design2 = Mm_workload.Gen.random_design rng ~segments:5 board in
  let r1 = Request.make ~id:"a" board design in
  let r2 = Request.make ~id:"b" board design2 in
  Alcotest.(check string)
    "same batch key"
    (Request.batch_key r1)
    (Request.batch_key r2);
  if
    Mm_io.Design_file.to_string design <> Mm_io.Design_file.to_string design2
  then
    Alcotest.(check bool)
      "distinct designs get distinct fingerprints" true
      (Request.fingerprint r1 <> Request.fingerprint r2)

let batch_requests_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* extra = int_range 1 2 in
    let rng = Mm_util.Prng.create seed in
    let board = Mm_workload.Gen.random_board rng in
    let d1 = Mm_workload.Gen.random_design rng ~segments:3 board in
    (* a duplicated design exercises the in-batch warm-hit path; the
       extras exercise cross-design grouping *)
    let designs =
      d1 :: d1
      :: List.init extra (fun _ ->
             Mm_workload.Gen.random_design rng ~segments:3 board)
    in
    return
      (List.mapi
         (fun i d -> Request.make ~id:(Printf.sprintf "m%d" i) board d)
         designs))

let batch_requests_arb =
  QCheck.make
    ~print:(fun rs ->
      String.concat "\n"
        (List.map (fun r -> J.to_string (Request.to_json r)) rs))
    batch_requests_gen

let response_equivalent a b =
  match (a, b) with
  | Request.Ok_response ra, Request.Ok_response rb ->
      let obj r = Option.bind (J.member "objective" r) J.to_float in
      ra.id = rb.id
      && (match (obj ra.report, obj rb.report) with
         | Some x, Some y ->
             Float.abs (x -. y) <= 1e-6 *. Float.max 1.0 (Float.abs x)
         | None, None -> true
         | _ -> false)
  | Request.Error_response ea, Request.Error_response eb ->
      ea.id = eb.id && ea.code = eb.code
  | _ -> false

let prop_batch_equivalence =
  qtest ~count:6 "batched responses match unbatched solves"
    batch_requests_arb (fun reqs ->
      let solo = Engine.create () in
      let unbatched = List.map (Engine.handle solo) reqs in
      let eng = Engine.create () in
      let out : (string, Request.response) Hashtbl.t = Hashtbl.create 8 in
      let started = ref 0 in
      let members =
        List.map
          (fun r ->
            {
              Engine.req = r;
              started = (fun () -> incr started);
              respond = (fun resp -> Hashtbl.replace out r.Request.id resp);
            })
          reqs
      in
      Engine.run_batch eng members;
      if !started <> List.length reqs then
        QCheck.Test.fail_reportf "started %d of %d members" !started
          (List.length reqs);
      List.for_all2
        (fun r solo_resp ->
          match Hashtbl.find_opt out r.Request.id with
          | None ->
              QCheck.Test.fail_reportf "member %s never answered" r.Request.id
          | Some batch_resp ->
              response_equivalent solo_resp batch_resp
              || QCheck.Test.fail_reportf "member %s diverged: %s vs %s"
                   r.Request.id
                   (J.to_string (Request.response_to_json solo_resp))
                   (J.to_string (Request.response_to_json batch_resp)))
        reqs unbatched)

let test_run_batch_counters () =
  let board, design = small_instance () in
  let eng = Engine.create () in
  let members n =
    List.init n (fun i ->
        {
          Engine.req = Request.make ~id:(Printf.sprintf "c%d" i) board design;
          started = ignore;
          respond = ignore;
        })
  in
  Engine.run_batch eng (members 1);
  let s = Engine.batch_stats eng in
  Alcotest.(check int) "singletons form no batch" 0 s.Engine.batches_formed;
  Engine.run_batch eng (members 3);
  let s = Engine.batch_stats eng in
  Alcotest.(check int) "one batch formed" 1 s.Engine.batches_formed;
  Alcotest.(check int) "two members coalesced" 2 s.Engine.coalesced_requests;
  Alcotest.(check int)
    "identical members ride warm state" 2 s.Engine.batch_warm_hits

(* --- warm-cache persistence -------------------------------------------------- *)

let with_temp_file f =
  let file = Filename.temp_file "mm_cache" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let test_cache_persistence_roundtrip () =
  with_temp_file (fun file ->
      let board, design = small_instance () in
      let req = Request.make ~id:"p" board design in
      let e1 = Engine.create () in
      let obj1 =
        match Engine.handle e1 req with
        | Request.Ok_response { report; _ } ->
            Option.bind (J.member "objective" report) J.to_float
        | Request.Error_response { message; _ } ->
            Alcotest.failf "training solve failed: %s" message
      in
      (match Cache.save (Engine.cache e1) file with
      | Ok n -> Alcotest.(check bool) "saved an entry" true (n >= 1)
      | Error e -> Alcotest.failf "save: %s" e);
      (* a second process: fresh engine, reload the file *)
      let e2 = Engine.create () in
      (match Cache.load (Engine.cache e2) file with
      | Ok n -> Alcotest.(check bool) "loaded an entry" true (n >= 1)
      | Error e -> Alcotest.failf "load: %s" e);
      match Engine.handle e2 req with
      | Request.Ok_response { cache_hit; warm_solves; report; _ } ->
          Alcotest.(check bool) "first post-restart solve hits" true cache_hit;
          Alcotest.(check bool) "training survived" true (warm_solves > 0);
          Alcotest.(check (option (float 1e-6)))
            "same objective as before the restart" obj1
            (Option.bind (J.member "objective" report) J.to_float);
          (* the reloaded basis/pseudocosts must actually apply *)
          let warm_applied =
            Option.bind (J.member "lp" report) (J.member "warm_applied")
          in
          (match warm_applied with
          | Some (J.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "reloaded state was not applied")
      | Request.Error_response { message; _ } ->
          Alcotest.failf "post-restart solve failed: %s" message)

let test_cache_persistence_rejects_corrupt () =
  let check_rejected label text =
    with_temp_file (fun file ->
        Out_channel.with_open_text file (fun oc -> output_string oc text);
        let c = Cache.create ~capacity:4 in
        (match Cache.load c file with
        | Error _ -> ()
        | Ok n -> Alcotest.failf "%s: load accepted %d entries" label n);
        Alcotest.(check int)
          (label ^ ": nothing installed")
          0 (Cache.stats c).Cache.entries;
        (* cold start still works after the rejected load *)
        let l = Cache.acquire c "k" in
        Alcotest.(check bool) (label ^ ": cold acquire") false l.Cache.hit;
        Cache.release c l)
  in
  check_rejected "garbage" "not json {{{";
  check_rejected "wrong version" {|{"version":99,"entries":[]}|};
  check_rejected "missing entries" {|{"version":1}|};
  check_rejected "invalid warm state"
    {|{"version":1,"entries":[{"key":"k","warm":{"solves":-1,"orig_cols":0,"orig_rows":0,"basis":null,"pseudocosts":null}}]}|}

let test_cache_save_load_file_roundtrip () =
  (* save of a loaded cache reproduces the same entries *)
  with_temp_file (fun file ->
      let board, design = small_instance () in
      let e1 = Engine.create () in
      ignore (Engine.handle e1 (Request.make ~id:"x" board design));
      (match Cache.save (Engine.cache e1) file with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      let c2 = Cache.create ~capacity:8 in
      let n1 =
        match Cache.load c2 file with
        | Ok n -> n
        | Error e -> Alcotest.failf "load: %s" e
      in
      with_temp_file (fun file2 ->
          (match Cache.save c2 file2 with
          | Ok n2 -> Alcotest.(check int) "entry count survives" n1 n2
          | Error e -> Alcotest.failf "re-save: %s" e);
          let c3 = Cache.create ~capacity:8 in
          match Cache.load c3 file2 with
          | Ok n3 -> Alcotest.(check int) "re-load count" n1 n3
          | Error e -> Alcotest.failf "re-load: %s" e))

(* --- server batching / client retry ------------------------------------------ *)

let test_server_batched_burst () =
  let board, design = small_instance () in
  let n = 6 in
  let (objs, batching), _ =
    with_server ~workers:1 ~max_batch:8 ~batch_linger_ms:300. (fun socket ->
        let lines =
          List.init n (fun i ->
              J.to_string
                (Request.to_json
                   (Request.make ~id:(Printf.sprintf "b%d" i) board design)))
        in
        match Client.roundtrip ~socket lines with
        | Error e -> Alcotest.failf "client: %s" e
        | Ok replies ->
            Alcotest.(check int) "every burst member answered" n
              (List.length replies);
            let objs =
              List.map
                (fun line ->
                  match decode_response line with
                  | Request.Ok_response { report; _ } -> (
                      match
                        Option.bind (J.member "objective" report) J.to_float
                      with
                      | Some o -> o
                      | None -> Alcotest.fail "response without objective")
                  | Request.Error_response { code; message; _ } ->
                      Alcotest.failf "burst member failed (%s): %s"
                        (Request.error_code_to_string code)
                        message)
                replies
            in
            let batching =
              match Client.request ~socket {|{"id":"s","op":"stats"}|} with
              | Error e -> Alcotest.failf "stats: %s" e
              | Ok reply -> (
                  match J.of_string reply with
                  | Error e -> Alcotest.failf "stats reply not JSON: %s" e
                  | Ok json -> (
                      match J.member "batching" json with
                      | Some b -> b
                      | None -> Alcotest.fail "stats without batching object"))
            in
            (objs, batching))
  in
  (match objs with
  | o :: rest ->
      List.iter
        (fun o' ->
          Alcotest.(check (float 1e-6)) "batched objectives identical" o o')
        rest
  | [] -> Alcotest.fail "no responses");
  let num k =
    match Option.bind (J.member k batching) J.to_int with
    | Some v -> v
    | None -> Alcotest.failf "batching.%s missing" k
  in
  Alcotest.(check bool) "a batch formed" true (num "batches_formed" >= 1);
  Alcotest.(check bool)
    "requests coalesced" true
    (num "coalesced_requests" >= 1);
  Alcotest.(check bool)
    "members rode in-batch warm state" true
    (num "batch_warm_hits" >= 1)

let test_client_retry_overloaded () =
  let board, design = small_instance () in
  let (), _ =
    with_server ~queue_capacity:0 (fun socket ->
        let line =
          J.to_string (Request.to_json (Request.make ~id:"rt" board design))
        in
        let result, attempts =
          Client.request_retry ~retries:2 ~backoff:1e-3 ~socket line
        in
        Alcotest.(check int) "all attempts spent" 3 attempts;
        match result with
        | Error e -> Alcotest.failf "transport error: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Error_response { code = Request.Overloaded; _ } -> ()
            | _ -> Alcotest.fail "still expected overloaded"))
  in
  ()

let test_client_retry_not_needed () =
  let board, design = small_instance () in
  let (), _ =
    with_server (fun socket ->
        let line =
          J.to_string (Request.to_json (Request.make ~id:"ok" board design))
        in
        let result, attempts =
          Client.request_retry ~retries:3 ~backoff:1e-3 ~socket line
        in
        Alcotest.(check int) "no retry on success" 1 attempts;
        match result with
        | Error e -> Alcotest.failf "transport error: %s" e
        | Ok reply -> (
            match decode_response reply with
            | Request.Ok_response _ -> ()
            | Request.Error_response { message; _ } ->
                Alcotest.failf "unexpected error: %s" message))
  in
  ()

let () =
  Alcotest.run "mm_service"
    [
      ( "codecs",
        [
          prop_knobs_roundtrip;
          prop_knobs_fingerprint_ignores_time_limit;
          prop_request_roundtrip;
          prop_request_fingerprint_canonical;
          prop_response_roundtrip;
          prop_wire_line_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "json shape" `Quick test_report_json_shape;
          Alcotest.test_case "json re-parses" `Quick test_report_json_parses_back;
          Alcotest.test_case "mapper attempts" `Quick
            test_mapper_attempts_recorded;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lease semantics" `Quick test_cache_lease_semantics;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "capacity zero" `Quick test_cache_capacity_zero;
        ] );
      ( "engine",
        [
          Alcotest.test_case "warm cache hits" `Quick
            test_engine_warm_cache_hits;
          Alcotest.test_case "bad request" `Quick test_engine_bad_request;
          Alcotest.test_case "time limit" `Quick test_engine_time_limit;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "backpressure" `Quick test_server_backpressure;
          Alcotest.test_case "reclaims stale socket" `Quick
            test_server_reclaims_stale_socket;
          Alcotest.test_case "refuses live socket" `Quick
            test_server_refuses_live_socket;
          Alcotest.test_case "control ops" `Quick test_server_control_ops;
        ] );
      ( "batching",
        [
          prop_batch_key_tracks_knob_fingerprint;
          prop_batch_key_ignores_time_limit;
          Alcotest.test_case "key shared across designs" `Quick
            test_batch_key_shares_across_designs;
          prop_batch_equivalence;
          Alcotest.test_case "run_batch counters" `Quick
            test_run_batch_counters;
          Alcotest.test_case "server batched burst" `Quick
            test_server_batched_burst;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_cache_persistence_roundtrip;
          Alcotest.test_case "corrupt file cold-starts" `Quick
            test_cache_persistence_rejects_corrupt;
          Alcotest.test_case "file round-trip counts" `Quick
            test_cache_save_load_file_roundtrip;
        ] );
      ( "client",
        [
          Alcotest.test_case "retry on overloaded" `Quick
            test_client_retry_overloaded;
          Alcotest.test_case "no retry on success" `Quick
            test_client_retry_not_needed;
        ] );
    ]
