open Mm_util

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- Ints ---------------------------------------------------------------- *)

let test_ceil_div () =
  Alcotest.(check int) "7/2" 4 (Ints.ceil_div 7 2);
  Alcotest.(check int) "8/2" 4 (Ints.ceil_div 8 2);
  Alcotest.(check int) "0/5" 0 (Ints.ceil_div 0 5);
  Alcotest.(check int) "1/5" 1 (Ints.ceil_div 1 5);
  Alcotest.check_raises "negative" (Invalid_argument "Ints.ceil_div") (fun () ->
      ignore (Ints.ceil_div (-1) 2))

let test_pow2 () =
  Alcotest.(check bool) "4 is pow2" true (Ints.is_pow2 4);
  Alcotest.(check bool) "6 not pow2" false (Ints.is_pow2 6);
  Alcotest.(check bool) "0 not pow2" false (Ints.is_pow2 0);
  Alcotest.(check bool) "neg not pow2" false (Ints.is_pow2 (-4));
  Alcotest.(check int) "ceil 0" 1 (Ints.ceil_pow2 0);
  Alcotest.(check int) "ceil 1" 1 (Ints.ceil_pow2 1);
  Alcotest.(check int) "ceil 5" 8 (Ints.ceil_pow2 5);
  Alcotest.(check int) "ceil 8" 8 (Ints.ceil_pow2 8);
  Alcotest.(check int) "floor 5" 4 (Ints.floor_pow2 5);
  Alcotest.(check int) "floor 8" 8 (Ints.floor_pow2 8)

let test_ilog2 () =
  Alcotest.(check int) "floor 1" 0 (Ints.ilog2_floor 1);
  Alcotest.(check int) "floor 7" 2 (Ints.ilog2_floor 7);
  Alcotest.(check int) "ceil 7" 3 (Ints.ilog2_ceil 7);
  Alcotest.(check int) "ceil 8" 3 (Ints.ilog2_ceil 8);
  Alcotest.(check int) "ceil 9" 4 (Ints.ilog2_ceil 9)

let test_sums () =
  Alcotest.(check int) "sum" 6 (Ints.sum [ 1; 2; 3 ]);
  Alcotest.(check int) "sum_by" 12 (Ints.sum_by (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check int) "max_by empty" 0 (Ints.max_by Fun.id []);
  Alcotest.(check int) "max_by" 9 (Ints.max_by (fun x -> x * x) [ 1; -3; 2 ]);
  Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (Ints.range 3)

let test_checked () =
  Alcotest.(check int) "mul ok" 12 (Ints.checked_mul 3 4);
  Alcotest.(check int) "mul zero" 0 (Ints.checked_mul 0 max_int);
  Alcotest.check_raises "mul overflow" (Failure "Ints.checked_mul: overflow")
    (fun () -> ignore (Ints.checked_mul max_int 2));
  Alcotest.check_raises "add overflow" (Failure "Ints.checked_add: overflow")
    (fun () -> ignore (Ints.checked_add max_int 1));
  Alcotest.(check int) "add mixed" 1 (Ints.checked_add 2 (-1))

let test_ceil_pow2_huge () =
  (* 2^61 is the largest representable power of two on a 64-bit int;
     anything above it used to spin forever on signed overflow *)
  let top = 1 lsl 61 in
  Alcotest.(check int) "2^61 is its own ceiling" top (Ints.ceil_pow2 top);
  Alcotest.check_raises "2^61 + 1 overflows"
    (Invalid_argument
       "Ints.ceil_pow2: no representable power of two >= n")
    (fun () -> ignore (Ints.ceil_pow2 (top + 1)));
  Alcotest.check_raises "max_int overflows"
    (Invalid_argument
       "Ints.ceil_pow2: no representable power of two >= n")
    (fun () -> ignore (Ints.ceil_pow2 max_int))

let prop_ceil_pow2 =
  qtest "ceil_pow2 is the least power of two >= n"
    QCheck.(int_range 1 (1 lsl 40))
    (fun n ->
      let p = Ints.ceil_pow2 n in
      Ints.is_pow2 p && p >= n && (p = 1 || p / 2 < n))

let prop_ceil_div =
  qtest "ceil_div matches float ceiling"
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 999))
    (fun (a, b) ->
      Ints.ceil_div a b = int_of_float (Float.ceil (float_of_int a /. float_of_int b)))

(* --- Rat ----------------------------------------------------------------- *)

let test_rat_basic () =
  let half = Rat.make 1 2 in
  let third = Rat.make 1 3 in
  Alcotest.(check string) "add" "5/6" (Rat.to_string (Rat.add half third));
  Alcotest.(check string) "sub" "1/6" (Rat.to_string (Rat.sub half third));
  Alcotest.(check string) "mul" "1/6" (Rat.to_string (Rat.mul half third));
  Alcotest.(check string) "div" "3/2" (Rat.to_string (Rat.div half third));
  Alcotest.(check string) "normalize" "1/2" (Rat.to_string (Rat.make 4 8));
  Alcotest.(check string) "neg denominator" "-1/2" (Rat.to_string (Rat.make 1 (-2)));
  Alcotest.(check bool) "int" true (Rat.is_integer (Rat.make 4 2));
  Alcotest.(check int) "floor -1/2" (-1) (Rat.floor (Rat.make (-1) 2));
  Alcotest.(check int) "ceil -1/2" 0 (Rat.ceil (Rat.make (-1) 2));
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2))

let test_rat_edge () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.make 1 0));
  Alcotest.(check string) "zero" "0" (Rat.to_string Rat.zero);
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (Rat.make (-3) 7));
  Alcotest.(check int) "sign zero" 0 (Rat.sign Rat.zero)

let rat_gen =
  QCheck.map
    (fun (n, d) -> Rat.make n d)
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 10000))

let prop_rat_add_comm =
  qtest "rat addition commutes" (QCheck.pair rat_gen rat_gen) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_roundtrip =
  qtest "of_float_approx inverts to_float on small rationals" rat_gen (fun a ->
      Rat.equal a (Rat.of_float_approx ~max_den:100_000_000 (Rat.to_float a)))

let prop_rat_floor_ceil =
  qtest "floor <= x <= ceil" rat_gen (fun a ->
      Rat.compare (Rat.of_int (Rat.floor a)) a <= 0
      && Rat.compare a (Rat.of_int (Rat.ceil a)) <= 0
      && Rat.ceil a - Rat.floor a <= 1)

let prop_rat_order =
  qtest "compare agrees with float compare" (QCheck.pair rat_gen rat_gen)
    (fun (a, b) ->
      let c = Rat.compare a b in
      let f = compare (Rat.to_float a) (Rat.to_float b) in
      (* floats of small rationals are exact enough to agree on strict order *)
      (c = 0 && f = 0) || c * f > 0 || (c <> 0 && f = 0))

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  let c1 = List.init 10 (fun _ -> Prng.int child 1000) in
  let a2 = Prng.create 7 in
  let child2 = Prng.split a2 in
  let c2 = List.init 10 (fun _ -> Prng.int child2 1000) in
  Alcotest.(check (list int)) "split deterministic" c1 c2

let test_prng_bounds () =
  let r = Prng.create 42 in
  for _ = 1 to 1000 do
    let v = Prng.int_in r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick r []))

let test_prng_shuffle () =
  let r = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_prng_nonneg =
  qtest "int is within [0, bound)" QCheck.(int_range 1 1_000_000) (fun bound ->
      let r = Prng.create bound in
      let v = Prng.int r bound in
      v >= 0 && v < bound)

(* --- Heap ---------------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create float_of_int in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create float_of_int in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h)

let test_heap_filter () =
  let h = Heap.create float_of_int in
  List.iter (Heap.push h) [ 1; 2; 3; 4; 5 ];
  Heap.filter_in_place h (fun x -> x mod 2 = 0);
  Alcotest.(check int) "size" 2 (Heap.size h);
  Alcotest.(check (option int)) "min" (Some 2) (Heap.pop h)

let prop_heap_sorted =
  qtest "heap drains in sorted order"
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create float_of_int in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)


let test_rat_min_max_abs () =
  let a = Rat.make (-3) 4 and b = Rat.make 1 2 in
  Alcotest.(check string) "min" "-3/4" (Rat.to_string (Rat.min a b));
  Alcotest.(check string) "max" "1/2" (Rat.to_string (Rat.max a b));
  Alcotest.(check string) "abs" "3/4" (Rat.to_string (Rat.abs a));
  Alcotest.(check string) "neg" "3/4" (Rat.to_string (Rat.neg a));
  Alcotest.(check int) "num" (-3) (Rat.num a);
  Alcotest.(check int) "den" 4 (Rat.den a)

let test_prng_copy_independent () =
  let a = Prng.create 3 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  let va = Prng.int a 1000 and vb = Prng.int b 1000 in
  Alcotest.(check int) "copies continue identically" va vb

let test_heap_min_priority () =
  let h = Heap.create float_of_int in
  Alcotest.(check (option (float 0.0))) "empty" None (Heap.min_priority h);
  Heap.push h 9;
  Heap.push h 2;
  Alcotest.(check (option (float 0.0))) "min" (Some 2.0) (Heap.min_priority h);
  Alcotest.(check (list int)) "to_list has both" [ 2; 9 ]
    (List.sort compare (Heap.to_list h))

(* --- Table & Ascii_plot -------------------------------------------------- *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true (contains_substring s "name");
  Alcotest.(check bool) "contains row" true (contains_substring s "alpha");
  (* all lines of the box have equal width *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  let widths = List.sort_uniq compare (List.map String.length lines) in
  Alcotest.(check int) "rectangular" 1 (List.length widths)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_plot () =
  let s =
    Ascii_plot.render
      [
        { Ascii_plot.label = "a"; glyph = '*'; points = [ (0., 0.); (1., 10.) ] };
        { Ascii_plot.label = "b"; glyph = '+'; points = [ (0., 5.); (1., 5.) ] };
      ]
  in
  Alcotest.(check bool) "has glyphs" true
    (String.contains s '*' && String.contains s '+')

let () =
  Alcotest.run "mm_util"
    [
      ( "ints",
        [
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "ilog2" `Quick test_ilog2;
          Alcotest.test_case "sums" `Quick test_sums;
          Alcotest.test_case "checked" `Quick test_checked;
          Alcotest.test_case "ceil_pow2 huge" `Quick test_ceil_pow2_huge;
          prop_ceil_pow2;
          prop_ceil_div;
        ] );
      ( "rat",
        [
          Alcotest.test_case "basic" `Quick test_rat_basic;
          Alcotest.test_case "edge" `Quick test_rat_edge;
          prop_rat_add_comm;
          prop_rat_roundtrip;
          prop_rat_floor_ceil;
          prop_rat_order;
          Alcotest.test_case "min/max/abs" `Quick test_rat_min_max_abs;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
          prop_prng_nonneg;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "filter" `Quick test_heap_filter;
          prop_heap_sorted;
          Alcotest.test_case "min priority" `Quick test_heap_min_priority;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "table arity" `Quick test_table_arity;
          Alcotest.test_case "plot" `Quick test_plot;
        ] );
    ]
