open Mm_workload

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

let test_table3_points_exact () =
  (* every Table 3 point regenerates a board with the paper's exact
     complexity parameters *)
  List.iter
    (fun (p : Table3.point) ->
      let spec = p.Table3.spec in
      let board = Gen.board_of_spec spec in
      Alcotest.(check int)
        (Printf.sprintf "banks for %d segs" spec.Gen.segments)
        spec.Gen.banks
        (Mm_arch.Board.total_banks board);
      Alcotest.(check int) "ports" spec.Gen.ports (Mm_arch.Board.total_ports board);
      Alcotest.(check int) "configs" spec.Gen.configs
        (Mm_arch.Board.total_configs board);
      let design = Gen.design_of_spec spec board in
      Alcotest.(check int) "segments" spec.Gen.segments
        (Mm_design.Design.num_segments design))
    Table3.points

let test_table3_paper_times () =
  (* the paper's numbers are transcribed: 9 rows, increasing sizes,
     complete >= global on every row *)
  Alcotest.(check int) "nine points" 9 (List.length Table3.points);
  List.iter
    (fun (p : Table3.point) ->
      Alcotest.(check bool) "complete slower in the paper" true
        (p.Table3.paper_complete_seconds >= p.Table3.paper_global_seconds))
    Table3.points;
  let first = List.hd Table3.points and last = List.nth Table3.points 8 in
  Alcotest.(check (float 1e-9)) "first complete" 8.1 first.Table3.paper_complete_seconds;
  Alcotest.(check (float 1e-9)) "last complete" 2989.0 last.Table3.paper_complete_seconds;
  Alcotest.(check (float 1e-9)) "last global" 489.0 last.Table3.paper_global_seconds

let test_generation_deterministic () =
  let spec = (List.hd Table3.points).Table3.spec in
  let b1, d1 = Gen.instance spec and b2, d2 = Gen.instance spec in
  Alcotest.(check string) "same board" (Mm_arch.Board.describe b1)
    (Mm_arch.Board.describe b2);
  Alcotest.(check string) "same design" (Mm_design.Design.describe d1)
    (Mm_design.Design.describe d2)

let test_generated_segments_fit () =
  List.iter
    (fun (p : Table3.point) ->
      let board, design = Gen.instance p.Table3.spec in
      for d = 0 to Mm_design.Design.num_segments design - 1 do
        let s = Mm_design.Design.segment design d in
        Alcotest.(check bool)
          (Printf.sprintf "segment %d fits somewhere" d)
          true
          (List.exists
             (fun t ->
               Mm_mapping.Preprocess.fits s (Mm_arch.Board.bank_type board t))
             (Mm_util.Ints.range (Mm_arch.Board.num_types board)))
      done)
    Table3.points

let test_smallest_point_solvable () =
  let board, design = Gen.instance (List.hd Table3.points).Table3.spec in
  match Mm_mapping.Mapper.run board design with
  | Ok o ->
      Alcotest.(check bool) "legal mapping" true
        (Mm_mapping.Validate.is_legal board design o.Mm_mapping.Mapper.mapping)
  | Error e -> Alcotest.fail (Mm_mapping.Mapper.error_to_string e)

let test_table3_devex_objectives () =
  (* regression: every Table-3 point proves the same optimal objective
     under devex pricing at parallelism 1 and 2 as the dantzig serial
     baseline (the global/detailed pipeline; the complete formulation
     is covered by the bench's pricing_ab record) *)
  List.iter
    (fun (p : Table3.point) ->
      let board, design = Gen.instance p.Table3.spec in
      let solve pricing parallelism =
        let options = Mm_mapping.Mapper.options ~pricing ~parallelism () in
        match Mm_mapping.Mapper.run ~options board design with
        | Ok o -> o.Mm_mapping.Mapper.objective
        | Error e -> Alcotest.fail (Mm_mapping.Mapper.error_to_string e)
      in
      let reference = solve Mm_lp.Simplex.Dantzig 1 in
      List.iter
        (fun j ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%d segs, devex j=%d" p.Table3.spec.Gen.segments j)
            reference
            (solve Mm_lp.Simplex.Devex j))
        [ 1; 2 ])
    Table3.points

let test_rejects_inconsistent_spec () =
  Alcotest.check_raises "configs not multiple of 5"
    (Invalid_argument "Gen.board_of_spec: configs must be a multiple of 5")
    (fun () ->
      ignore
        (Gen.board_of_spec { Gen.segments = 4; banks = 5; ports = 7; configs = 13; seed = 1 }));
  Alcotest.check_raises "ports below banks"
    (Invalid_argument "Gen.board_of_spec: ports < banks") (fun () ->
      ignore
        (Gen.board_of_spec { Gen.segments = 4; banks = 5; ports = 4; configs = 10; seed = 1 }))


let test_rejects_nonsensical_spec () =
  (* zero/negative fields get the typed error, not a crash or loop *)
  let check field spec =
    (match Gen.validate_spec spec with
    | Error (Gen.Nonpositive { field = f; _ }) ->
        Alcotest.(check string) "offending field" field f
    | Error e -> Alcotest.fail (Gen.spec_error_to_string e)
    | Ok () -> Alcotest.fail "validate_spec accepted a nonsensical spec");
    Alcotest.(check bool) "board_of_spec raises Invalid_spec" true
      (match Gen.board_of_spec spec with
      | _ -> false
      | exception Gen.Invalid_spec (Gen.Nonpositive _) -> true)
  in
  let base = { Gen.segments = 4; banks = 5; ports = 7; configs = 10; seed = 1 } in
  check "segments" { base with Gen.segments = 0 };
  check "segments" { base with Gen.segments = -3 };
  check "banks" { base with Gen.banks = 0 };
  check "ports" { base with Gen.ports = 0 };
  check "configs" { base with Gen.configs = 0 };
  (* design_of_spec guards segments itself *)
  let board = Gen.board_of_spec base in
  Alcotest.(check bool) "design_of_spec raises Invalid_spec" true
    (match Gen.design_of_spec { base with Gen.segments = 0 } board with
    | _ -> false
    | exception Gen.Invalid_spec (Gen.Nonpositive _) -> true)

let test_derived_seeds_distinct () =
  (* the historical 1000 + segments + banks formula collided for
     distinct points with equal sums; derived seeds must not *)
  let s1 = Gen.derived_seed ~segments:30 ~banks:47 ~ports:80 ~configs:150 in
  let s2 = Gen.derived_seed ~segments:32 ~banks:45 ~ports:80 ~configs:150 in
  let s3 = Gen.derived_seed ~segments:32 ~banks:45 ~ports:82 ~configs:150 in
  let s4 = Gen.derived_seed ~segments:32 ~banks:45 ~ports:80 ~configs:155 in
  Alcotest.(check bool) "equal-sum specs differ" true (s1 <> s2);
  Alcotest.(check bool) "ports mixed in" true (s2 <> s3);
  Alcotest.(check bool) "configs mixed in" true (s2 <> s4);
  let spec = Gen.make ~segments:32 ~banks:45 ~ports:80 ~configs:150 () in
  Alcotest.(check int) "make derives the same seed" s2 spec.Gen.seed

let test_table3_seeds_pinned () =
  (* the nine paper points keep the seeds the old formula produced, so
     recorded BENCH_lp.json baselines regenerate bit-identically *)
  List.iter
    (fun (p : Table3.point) ->
      let s = p.Table3.spec in
      Alcotest.(check int)
        (Printf.sprintf "seed for %d/%d" s.Gen.segments s.Gen.banks)
        (1000 + s.Gen.segments + s.Gen.banks)
        s.Gen.seed)
    Table3.points

let test_scale_tiers_valid () =
  (* every scale tier composes, exceeds the largest Table-3 point, and
     regenerates a board hitting its totals exactly *)
  let largest = (List.nth Table3.points 8).Table3.spec in
  Alcotest.(check bool) "at least 4 tiers" true (List.length Gen.scale_tiers >= 4);
  List.iter
    (fun (t : Gen.tier) ->
      let s = t.Gen.spec in
      (match Gen.validate_spec s with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Gen.spec_error_to_string e));
      Alcotest.(check bool)
        (Printf.sprintf "tier %s beyond Table 3" t.Gen.tier_name)
        true
        (s.Gen.segments > largest.Gen.segments
        && s.Gen.banks > largest.Gen.banks
        && s.Gen.ports > largest.Gen.ports
        && s.Gen.configs > largest.Gen.configs);
      let board = Gen.board_of_spec ~variety:t.Gen.variety s in
      Alcotest.(check int) "banks" s.Gen.banks (Mm_arch.Board.total_banks board);
      Alcotest.(check int) "ports" s.Gen.ports (Mm_arch.Board.total_ports board);
      Alcotest.(check int) "configs" s.Gen.configs
        (Mm_arch.Board.total_configs board))
    Gen.scale_tiers

let test_fill_scales_designs () =
  let spec = (List.hd Table3.points).Table3.spec in
  let board = Gen.board_of_spec spec in
  let small = Gen.design_of_spec ~fill:0.1 spec board in
  let large = Gen.design_of_spec ~fill:0.7 spec board in
  Alcotest.(check bool) "fill scales total bits" true
    (Mm_design.Design.total_bits small < Mm_design.Design.total_bits large)

let spec_gen =
  QCheck.make
    QCheck.Gen.(
      let* banks = int_range 4 60 in
      let* extra_ports = int_range 0 30 in
      let* cfg_units = int_range 1 12 in
      let* seed = int_range 0 100000 in
      return
        {
          Gen.segments = 8;
          banks;
          ports = banks + extra_ports;
          configs = 5 * cfg_units;
          seed;
        })

let prop_board_totals_exact =
  qtest "board composition hits arbitrary consistent totals exactly" spec_gen
    (fun spec ->
      (* not all random triples are composable; skip those *)
      match Gen.board_of_spec spec with
      | board ->
          Mm_arch.Board.total_banks board = spec.Gen.banks
          && Mm_arch.Board.total_ports board = spec.Gen.ports
          && Mm_arch.Board.total_configs board = spec.Gen.configs
      | exception Invalid_argument _ -> QCheck.assume_fail ())

let prop_random_instances_mappable =
  qtest ~count:30 "random boards and designs go through the pipeline"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Mm_util.Prng.create seed in
      let board = Gen.random_board rng in
      let design = Gen.random_design rng ~segments:5 board in
      match Mm_mapping.Mapper.run board design with
      | Ok o -> Mm_mapping.Validate.is_legal board design o.Mm_mapping.Mapper.mapping
      | Error Mm_mapping.Mapper.Solver_limit -> false
      | Error _ -> true)

let () =
  Alcotest.run "mm_workload"
    [
      ( "table3",
        [
          Alcotest.test_case "exact complexity parameters" `Quick test_table3_points_exact;
          Alcotest.test_case "paper times transcribed" `Quick test_table3_paper_times;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "segments fit" `Quick test_generated_segments_fit;
          Alcotest.test_case "smallest point solvable" `Quick test_smallest_point_solvable;
          Alcotest.test_case "devex objectives at j=1,2" `Quick
            test_table3_devex_objectives;
        ] );
      ( "gen",
        [
          Alcotest.test_case "rejects inconsistent" `Quick test_rejects_inconsistent_spec;
          Alcotest.test_case "rejects nonsensical" `Quick test_rejects_nonsensical_spec;
          Alcotest.test_case "derived seeds distinct" `Quick test_derived_seeds_distinct;
          Alcotest.test_case "table3 seeds pinned" `Quick test_table3_seeds_pinned;
          Alcotest.test_case "scale tiers valid" `Quick test_scale_tiers_valid;
          Alcotest.test_case "fill scales" `Quick test_fill_scales_designs;
          prop_board_totals_exact;
          prop_random_instances_mappable;
        ] );
    ]
